//! Versioned row tables: every version is an ordinary row of the base
//! table, carrying `(begin_ts, end_ts)` validity timestamps.

use fabric_sim::MemoryHierarchy;
use fabric_types::{
    ColumnDef, ColumnId, ColumnType, FabricError, Geometry, Result, Schema, TsFilter, Value,
};
use rowstore::{RowId, RowTable};

/// Identifier of a *logical* row; its versions form a chain of physical
/// rows.
pub type LogicalId = usize;

/// Names of the hidden timestamp columns appended to the user schema.
pub const BEGIN_COL: &str = "__begin_ts";
pub const END_COL: &str = "__end_ts";

/// A multi-versioned table over a single row-oriented base layout.
///
/// Physically this is a plain [`RowTable`] whose schema is the user schema
/// plus two trailing `i64` timestamp columns, exactly the representation of
/// paper §III-C. Updates append; deletes stamp; nothing is rewritten in
/// place, so concurrent snapshot readers never block.
pub struct VersionedTable {
    inner: RowTable,
    user_cols: usize,
    /// Version chains, oldest first; indexed by [`LogicalId`].
    chains: Vec<Vec<RowId>>,
    /// Commit timestamp of each logical row's newest version (for
    /// first-committer-wins validation).
    last_commit: Vec<u64>,
}

impl VersionedTable {
    /// Create a versioned table for `user_schema` with room for `capacity`
    /// physical versions.
    pub fn create(mem: &mut MemoryHierarchy, user_schema: Schema, capacity: usize) -> Result<Self> {
        let user_cols = user_schema.len();
        let mut cols: Vec<ColumnDef> = user_schema.columns().to_vec();
        cols.push(ColumnDef::new(BEGIN_COL, ColumnType::I64));
        cols.push(ColumnDef::new(END_COL, ColumnType::I64));
        let inner = RowTable::create(mem, Schema::new(cols), capacity)?;
        Ok(VersionedTable {
            inner,
            user_cols,
            chains: Vec::new(),
            last_commit: Vec::new(),
        })
    }

    /// The underlying physical table (all versions).
    pub fn physical(&self) -> &RowTable {
        &self.inner
    }

    /// Number of user (visible) columns.
    pub fn user_cols(&self) -> usize {
        self.user_cols
    }

    /// Number of logical rows ever created (including deleted ones).
    pub fn logical_len(&self) -> usize {
        self.chains.len()
    }

    /// Number of physical versions currently stored.
    pub fn version_count(&self) -> usize {
        self.inner.len()
    }

    /// Commit timestamp of the newest version of `logical`.
    pub fn last_commit_ts(&self, logical: LogicalId) -> Result<u64> {
        self.last_commit
            .get(logical)
            .copied()
            .ok_or_else(|| FabricError::Txn(format!("unknown logical row {logical}")))
    }

    fn check_logical(&self, logical: LogicalId) -> Result<()> {
        if logical >= self.chains.len() {
            return Err(FabricError::Txn(format!("unknown logical row {logical}")));
        }
        Ok(())
    }

    /// Is the newest version of `logical` live (end stamp unset)? Untimed
    /// — this is the commit-path precheck, not a snapshot read.
    pub fn latest_is_live(&self, mem: &mut MemoryHierarchy, logical: LogicalId) -> Result<bool> {
        self.check_logical(logical)?;
        let cur = *self.chains[logical]
            .last()
            .ok_or_else(|| FabricError::Txn(format!("logical row {logical} has no versions")))?;
        let row = self.inner.decode_row_untimed(mem, cur)?;
        Ok(row[self.user_cols + 1] == Value::I64(0))
    }

    // ------------------------------------------------------------- writes
    //
    // The `apply_*` methods are called by `TxnManager::commit` with an
    // allocated commit timestamp; they perform the timed writes.

    /// Append the first version of a new logical row.
    pub fn apply_insert(
        &mut self,
        mem: &mut MemoryHierarchy,
        values: &[Value],
        commit_ts: u64,
    ) -> Result<LogicalId> {
        if values.len() != self.user_cols {
            return Err(FabricError::Txn(format!(
                "insert has {} values, schema has {} columns",
                values.len(),
                self.user_cols
            )));
        }
        let mut row = values.to_vec();
        row.push(Value::I64(commit_ts as i64));
        row.push(Value::I64(0));
        let rid = self.inner.append(mem, &row)?;
        self.chains.push(vec![rid]);
        self.last_commit.push(commit_ts);
        Ok(self.chains.len() - 1)
    }

    /// Supersede the current version of `logical` with one whose columns
    /// are updated per `updates`.
    pub fn apply_update(
        &mut self,
        mem: &mut MemoryHierarchy,
        logical: LogicalId,
        updates: &[(ColumnId, Value)],
        commit_ts: u64,
    ) -> Result<()> {
        self.check_logical(logical)?;
        let cur = *self.chains[logical]
            .last()
            .ok_or_else(|| FabricError::Txn(format!("logical row {logical} has no versions")))?;
        // Read the current version (timed: the OLTP path touches the row).
        let mut row = {
            let w = self.inner.layout().row_width();
            mem.touch_read(self.inner.row_addr(cur), w);
            self.inner.decode_row_untimed(mem, cur)?
        };
        if row[self.user_cols + 1] != Value::I64(0) {
            return Err(FabricError::Txn(format!(
                "logical row {logical} is deleted"
            )));
        }
        for (col, v) in updates {
            if *col >= self.user_cols {
                return Err(FabricError::ColumnIndexOutOfRange {
                    index: *col,
                    len: self.user_cols,
                });
            }
            row[*col] = v.clone();
        }
        // Stamp the old version's end and append the new version.
        self.inner
            .update_column(mem, cur, self.user_cols + 1, &Value::I64(commit_ts as i64))?;
        row[self.user_cols] = Value::I64(commit_ts as i64);
        row[self.user_cols + 1] = Value::I64(0);
        let rid = self.inner.append(mem, &row)?;
        self.chains[logical].push(rid);
        self.last_commit[logical] = commit_ts;
        Ok(())
    }

    /// Delete `logical` by stamping its current version's end timestamp.
    pub fn apply_delete(
        &mut self,
        mem: &mut MemoryHierarchy,
        logical: LogicalId,
        commit_ts: u64,
    ) -> Result<()> {
        self.check_logical(logical)?;
        let cur = *self.chains[logical]
            .last()
            .ok_or_else(|| FabricError::Txn(format!("logical row {logical} has no versions")))?;
        let end = self.inner.read_column(mem, cur, self.user_cols + 1)?;
        if end != Value::I64(0) {
            return Err(FabricError::Txn(format!(
                "logical row {logical} already deleted"
            )));
        }
        self.inner
            .update_column(mem, cur, self.user_cols + 1, &Value::I64(commit_ts as i64))?;
        self.last_commit[logical] = commit_ts;
        Ok(())
    }

    // -------------------------------------------------------------- reads

    /// Is the physical version `rid` visible at snapshot `ts`? Timed: reads
    /// the two timestamp fields.
    fn version_visible(&self, mem: &mut MemoryHierarchy, rid: RowId, ts: u64) -> Result<bool> {
        let begin = self.inner.read_column(mem, rid, self.user_cols)?.as_i64()? as u64;
        let end = self
            .inner
            .read_column(mem, rid, self.user_cols + 1)?
            .as_i64()? as u64;
        Ok(begin <= ts && (end == 0 || ts < end))
    }

    /// Point read of one column of `logical` at snapshot `ts` (OLTP path:
    /// walks the version chain newest to oldest).
    pub fn read_at(
        &self,
        mem: &mut MemoryHierarchy,
        logical: LogicalId,
        col: ColumnId,
        ts: u64,
    ) -> Result<Option<Value>> {
        self.check_logical(logical)?;
        for &rid in self.chains[logical].iter().rev() {
            if self.version_visible(mem, rid, ts)? {
                return Ok(Some(self.inner.read_column(mem, rid, col)?));
            }
        }
        Ok(None)
    }

    /// Full-row point read at snapshot `ts`.
    pub fn read_row_at(
        &self,
        mem: &mut MemoryHierarchy,
        logical: LogicalId,
        ts: u64,
    ) -> Result<Option<Vec<Value>>> {
        self.check_logical(logical)?;
        for &rid in self.chains[logical].iter().rev() {
            if self.version_visible(mem, rid, ts)? {
                let mut row = self.inner.decode_row_untimed(mem, rid)?;
                mem.touch_read(self.inner.row_addr(rid), self.inner.layout().row_width());
                row.truncate(self.user_cols);
                return Ok(Some(row));
            }
        }
        Ok(None)
    }

    /// All user rows visible at snapshot `ts`, in *physical* row order —
    /// the order an analytical scan of this table emits, which is what
    /// recovered query answers must reproduce bit-identically. Timed.
    pub fn snapshot_rows(&self, mem: &mut MemoryHierarchy, ts: u64) -> Result<Vec<Vec<Value>>> {
        let mut out = Vec::new();
        for rid in 0..self.inner.len() {
            if self.version_visible(mem, rid, ts)? {
                let mut row = self.inner.decode_row_untimed(mem, rid)?;
                mem.touch_read(self.inner.row_addr(rid), self.inner.layout().row_width());
                row.truncate(self.user_cols);
                out.push(row);
            }
        }
        Ok(out)
    }

    // ---------------------------------------------------- checkpoint state
    //
    // A checkpoint must capture the *physical* layout, not just logical
    // content: scans emit rows in physical order, so a restore that
    // reordered versions would change recovered query answers.

    /// Version chains, oldest first, indexed by [`LogicalId`].
    pub fn chains(&self) -> &[Vec<RowId>] {
        &self.chains
    }

    /// Commit timestamp of every logical row's newest version.
    pub fn last_commits(&self) -> &[u64] {
        &self.last_commit
    }

    /// Rebuild a table from checkpointed state: `rows` are *full*
    /// physical rows (user columns plus the two timestamp columns) in rid
    /// order, `chains`/`last_commit` the logical bookkeeping. Timed — the
    /// restore streams every version back through the hierarchy, which is
    /// exactly the recovery cost `abl_recovery` measures.
    pub fn restore(
        mem: &mut MemoryHierarchy,
        user_schema: Schema,
        capacity: usize,
        rows: &[Vec<Value>],
        chains: Vec<Vec<RowId>>,
        last_commit: Vec<u64>,
    ) -> Result<Self> {
        if chains.len() != last_commit.len() {
            return Err(FabricError::Codec(format!(
                "checkpoint has {} chains but {} commit stamps",
                chains.len(),
                last_commit.len()
            )));
        }
        for chain in &chains {
            for &rid in chain {
                if rid >= rows.len() {
                    return Err(FabricError::Codec(format!(
                        "checkpoint chain references version {rid} of {}",
                        rows.len()
                    )));
                }
            }
        }
        let mut t = VersionedTable::create(mem, user_schema, capacity)?;
        for row in rows {
            t.inner.append(mem, row)?;
        }
        t.chains = chains;
        t.last_commit = last_commit;
        Ok(t)
    }

    /// The ephemeral-access descriptor for `cols` at snapshot `ts`: the RM
    /// device applies the visibility filter in hardware while gathering
    /// (paper §III-C).
    pub fn geometry_at(&self, cols: &[ColumnId], ts: u64) -> Result<Geometry> {
        for &c in cols {
            if c >= self.user_cols {
                return Err(FabricError::ColumnIndexOutOfRange {
                    index: c,
                    len: self.user_cols,
                });
            }
        }
        let layout = self.inner.layout();
        let filter = TsFilter {
            begin: layout.field(self.user_cols)?,
            end: layout.field(self.user_cols + 1)?,
            snapshot_ts: ts,
        };
        Ok(self.inner.geometry(cols)?.with_visibility(filter))
    }

    // ----------------------------------------------------------- vacuum

    /// Remove versions that are invisible to every snapshot at or after
    /// `watermark` (dead versions: `end != 0 && end <= watermark`),
    /// compacting the physical table in place. Returns the number of
    /// versions removed. Timed: compaction moves rows through the
    /// hierarchy.
    pub fn vacuum(&mut self, mem: &mut MemoryHierarchy, watermark: u64) -> Result<usize> {
        let total = self.inner.len();
        let mut keep = vec![true; total];
        for rid in 0..total {
            let end = self
                .inner
                .read_column(mem, rid, self.user_cols + 1)?
                .as_i64()? as u64;
            if end != 0 && end <= watermark {
                keep[rid] = false;
            }
        }
        // Compact: stable left shift of surviving rows.
        let mut new_of_old: Vec<Option<RowId>> = vec![None; total];
        let mut dst = 0usize;
        for src in 0..total {
            if keep[src] {
                self.inner.move_row(mem, src, dst);
                new_of_old[src] = Some(dst);
                dst += 1;
            }
        }
        let removed = total - dst;
        self.inner.set_len(dst);
        for chain in &mut self.chains {
            chain.retain_mut(|rid| match new_of_old[*rid] {
                Some(new) => {
                    *rid = new;
                    true
                }
                None => false,
            });
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::SimConfig;

    fn setup() -> (MemoryHierarchy, VersionedTable) {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let schema = Schema::from_pairs(&[("k", ColumnType::I64), ("v", ColumnType::I64)]);
        let t = VersionedTable::create(&mut mem, schema, 1024).unwrap();
        (mem, t)
    }

    #[test]
    fn insert_then_read_at_snapshots() {
        let (mut mem, mut t) = setup();
        let l = t
            .apply_insert(&mut mem, &[Value::I64(1), Value::I64(10)], 5)
            .unwrap();
        assert_eq!(t.read_at(&mut mem, l, 1, 4).unwrap(), None); // before insert
        assert_eq!(t.read_at(&mut mem, l, 1, 5).unwrap(), Some(Value::I64(10)));
        assert_eq!(
            t.read_at(&mut mem, l, 1, 100).unwrap(),
            Some(Value::I64(10))
        );
    }

    #[test]
    fn update_appends_version_and_preserves_history() {
        let (mut mem, mut t) = setup();
        let l = t
            .apply_insert(&mut mem, &[Value::I64(1), Value::I64(10)], 5)
            .unwrap();
        t.apply_update(&mut mem, l, &[(1, Value::I64(20))], 8)
            .unwrap();
        assert_eq!(t.version_count(), 2);
        // Old snapshot still sees 10; new snapshot sees 20.
        assert_eq!(t.read_at(&mut mem, l, 1, 7).unwrap(), Some(Value::I64(10)));
        assert_eq!(t.read_at(&mut mem, l, 1, 8).unwrap(), Some(Value::I64(20)));
        assert_eq!(t.last_commit_ts(l).unwrap(), 8);
    }

    #[test]
    fn delete_hides_row_from_later_snapshots() {
        let (mut mem, mut t) = setup();
        let l = t
            .apply_insert(&mut mem, &[Value::I64(1), Value::I64(10)], 5)
            .unwrap();
        t.apply_delete(&mut mem, l, 9).unwrap();
        assert_eq!(t.read_at(&mut mem, l, 1, 8).unwrap(), Some(Value::I64(10)));
        assert_eq!(t.read_at(&mut mem, l, 1, 9).unwrap(), None);
        // Double delete and update-after-delete are errors.
        assert!(t.apply_delete(&mut mem, l, 10).is_err());
        assert!(t
            .apply_update(&mut mem, l, &[(1, Value::I64(1))], 10)
            .is_err());
    }

    #[test]
    fn geometry_at_carries_visibility_filter() {
        let (mut mem, mut t) = setup();
        t.apply_insert(&mut mem, &[Value::I64(1), Value::I64(10)], 5)
            .unwrap();
        let g = t.geometry_at(&[1], 7).unwrap();
        let vis = g.visibility.expect("has ts filter");
        assert_eq!(vis.snapshot_ts, 7);
        assert_eq!(vis.begin.offset, 16); // after two i64 user columns
        assert_eq!(vis.end.offset, 24);
        assert!(g.validate().is_ok());
        // Requesting a hidden column is rejected.
        assert!(t.geometry_at(&[2], 7).is_err());
    }

    #[test]
    fn vacuum_drops_dead_versions_and_remaps_chains() {
        let (mut mem, mut t) = setup();
        let l0 = t
            .apply_insert(&mut mem, &[Value::I64(1), Value::I64(10)], 2)
            .unwrap();
        let l1 = t
            .apply_insert(&mut mem, &[Value::I64(2), Value::I64(20)], 3)
            .unwrap();
        t.apply_update(&mut mem, l0, &[(1, Value::I64(11))], 4)
            .unwrap();
        t.apply_update(&mut mem, l0, &[(1, Value::I64(12))], 6)
            .unwrap();
        t.apply_delete(&mut mem, l1, 7).unwrap();
        assert_eq!(t.version_count(), 4);

        // Watermark 5: the version of l0 that ended at 4 is dead; l1's
        // deletion at 7 is still visible to snapshots in (5, 7).
        let removed = t.vacuum(&mut mem, 5).unwrap();
        assert_eq!(removed, 1);
        assert_eq!(t.version_count(), 3);
        assert_eq!(t.read_at(&mut mem, l0, 1, 5).unwrap(), Some(Value::I64(11)));
        assert_eq!(
            t.read_at(&mut mem, l0, 1, 100).unwrap(),
            Some(Value::I64(12))
        );
        assert_eq!(t.read_at(&mut mem, l1, 1, 6).unwrap(), Some(Value::I64(20)));

        // Watermark 10: l1's tombstoned version goes too.
        let removed = t.vacuum(&mut mem, 10).unwrap();
        assert_eq!(removed, 2); // l0's v2 (ended 6) and l1's deleted version
        assert_eq!(t.version_count(), 1);
        assert_eq!(
            t.read_at(&mut mem, l0, 1, 100).unwrap(),
            Some(Value::I64(12))
        );
        assert_eq!(t.read_at(&mut mem, l1, 1, 100).unwrap(), None);
    }

    #[test]
    fn snapshot_rows_are_physical_order_visible_user_rows() {
        let (mut mem, mut t) = setup();
        let l0 = t
            .apply_insert(&mut mem, &[Value::I64(1), Value::I64(10)], 2)
            .unwrap();
        let l1 = t
            .apply_insert(&mut mem, &[Value::I64(2), Value::I64(20)], 3)
            .unwrap();
        t.apply_update(&mut mem, l0, &[(1, Value::I64(11))], 4)
            .unwrap();
        t.apply_delete(&mut mem, l1, 5).unwrap();

        // At ts 3 both originals are visible, in insertion (physical) order.
        assert_eq!(
            t.snapshot_rows(&mut mem, 3).unwrap(),
            vec![
                vec![Value::I64(1), Value::I64(10)],
                vec![Value::I64(2), Value::I64(20)],
            ]
        );
        // At ts 5 the delete hides l1 and the update's new version — which
        // sits physically *after* l1's row — carries l0's current value.
        assert_eq!(
            t.snapshot_rows(&mut mem, 5).unwrap(),
            vec![vec![Value::I64(1), Value::I64(11)]]
        );
    }

    #[test]
    fn restore_reproduces_the_physical_table_exactly() {
        let (mut mem, mut t) = setup();
        let l0 = t
            .apply_insert(&mut mem, &[Value::I64(1), Value::I64(10)], 2)
            .unwrap();
        t.apply_insert(&mut mem, &[Value::I64(2), Value::I64(20)], 3)
            .unwrap();
        t.apply_update(&mut mem, l0, &[(1, Value::I64(11))], 4)
            .unwrap();

        let rows: Vec<Vec<Value>> = (0..t.version_count())
            .map(|rid| t.physical().decode_row_untimed(&mem, rid).unwrap())
            .collect();
        let schema = Schema::from_pairs(&[("k", ColumnType::I64), ("v", ColumnType::I64)]);
        let r = VersionedTable::restore(
            &mut mem,
            schema,
            1024,
            &rows,
            t.chains().to_vec(),
            t.last_commits().to_vec(),
        )
        .unwrap();
        assert_eq!(r.version_count(), t.version_count());
        assert_eq!(r.logical_len(), t.logical_len());
        for ts in [2u64, 3, 4, 10] {
            assert_eq!(
                r.snapshot_rows(&mut mem, ts).unwrap(),
                t.snapshot_rows(&mut mem, ts).unwrap(),
                "snapshot at {ts} diverged"
            );
        }
        assert_eq!(r.last_commit_ts(l0).unwrap(), 4);

        // Corrupt bookkeeping is rejected, not UB.
        let schema = Schema::from_pairs(&[("k", ColumnType::I64), ("v", ColumnType::I64)]);
        assert!(VersionedTable::restore(
            &mut mem,
            schema.clone(),
            16,
            &rows,
            vec![vec![99]],
            vec![1]
        )
        .is_err());
        assert!(
            VersionedTable::restore(&mut mem, schema, 16, &rows, vec![vec![0]], vec![]).is_err()
        );
    }

    #[test]
    fn unknown_logical_rows_are_errors() {
        let (mut mem, mut t) = setup();
        assert!(t.read_at(&mut mem, 0, 0, 1).is_err());
        assert!(t
            .apply_update(&mut mem, 3, &[(0, Value::I64(1))], 2)
            .is_err());
        assert!(t.apply_delete(&mut mem, 3, 2).is_err());
    }

    #[test]
    fn insert_arity_checked() {
        let (mut mem, mut t) = setup();
        assert!(t.apply_insert(&mut mem, &[Value::I64(1)], 2).is_err());
    }
}
