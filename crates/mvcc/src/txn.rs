//! Transactions: buffered writes, snapshot reads, first-committer-wins
//! validation.

use crate::oracle::TimestampOracle;
use crate::table::{LogicalId, VersionedTable};
use fabric_sim::MemoryHierarchy;
use fabric_types::{ColumnId, FabricError, Result, Value};

/// One buffered write.
#[derive(Debug, Clone)]
pub enum WriteOp {
    Insert(Vec<Value>),
    Update(LogicalId, Vec<(ColumnId, Value)>),
    Delete(LogicalId),
}

/// A transaction: reads see the snapshot at `start_ts`; writes are buffered
/// until commit.
#[derive(Debug)]
pub struct Transaction {
    pub id: u64,
    pub start_ts: u64,
    writes: Vec<WriteOp>,
}

impl Transaction {
    /// Buffer an insert; the logical id is assigned at commit (returned by
    /// [`TxnManager::commit`]).
    pub fn insert(&mut self, values: Vec<Value>) {
        self.writes.push(WriteOp::Insert(values));
    }

    /// Buffer column updates of a logical row.
    pub fn update(&mut self, logical: LogicalId, updates: Vec<(ColumnId, Value)>) {
        self.writes.push(WriteOp::Update(logical, updates));
    }

    /// Buffer a delete.
    pub fn delete(&mut self, logical: LogicalId) {
        self.writes.push(WriteOp::Delete(logical));
    }

    /// Snapshot read through this transaction.
    pub fn read(
        &self,
        mem: &mut MemoryHierarchy,
        table: &VersionedTable,
        logical: LogicalId,
        col: ColumnId,
    ) -> Result<Option<Value>> {
        table.read_at(mem, logical, col, self.start_ts)
    }

    /// Logical rows this transaction intends to modify (its write set).
    pub fn write_set(&self) -> Vec<LogicalId> {
        let mut set = Vec::new();
        for w in &self.writes {
            match w {
                WriteOp::Update(l, _) | WriteOp::Delete(l) => {
                    if !set.contains(l) {
                        set.push(*l);
                    }
                }
                WriteOp::Insert(_) => {}
            }
        }
        set
    }

    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }

    /// The buffered writes, in application order (the WAL codec encodes
    /// exactly this sequence).
    pub fn writes(&self) -> &[WriteOp] {
        &self.writes
    }
}

/// Outcome of a successful commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitReceipt {
    pub commit_ts: u64,
    /// Logical ids assigned to this transaction's inserts, in order.
    pub inserted: Vec<LogicalId>,
}

/// The transaction manager: snapshot allocation and commit validation.
///
/// Validation is first-committer-wins: a transaction may commit only if no
/// logical row in its write set was committed by someone else after the
/// transaction's snapshot — the classic snapshot-isolation rule, which the
/// fabric makes cheap because all version visibility checks are timestamp
/// comparisons (§III-C).
pub struct TxnManager {
    oracle: TimestampOracle,
    next_txn_id: std::sync::atomic::AtomicU64,
}

impl TxnManager {
    pub fn new() -> Self {
        TxnManager {
            oracle: TimestampOracle::new(),
            next_txn_id: 1.into(),
        }
    }

    /// A manager whose oracle resumes at `next_ts` — used by the recovery
    /// path to continue allocating above the recovered watermark.
    pub fn starting_at(next_ts: u64) -> Self {
        TxnManager {
            oracle: TimestampOracle::starting_at(next_ts),
            next_txn_id: 1.into(),
        }
    }

    /// The timestamp source (recovery inspects the watermark through it).
    pub fn oracle(&self) -> &TimestampOracle {
        &self.oracle
    }

    /// Begin a transaction reading the current snapshot.
    pub fn begin(&self) -> Transaction {
        Transaction {
            id: self
                .next_txn_id
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst),
            start_ts: self.oracle.latest(),
            writes: Vec::new(),
        }
    }

    /// The snapshot timestamp a fresh reader would get right now.
    pub fn snapshot_ts(&self) -> u64 {
        self.oracle.latest()
    }

    /// First-committer-wins validation of `txn`'s write set against the
    /// table: rejects with [`FabricError::Txn`] if any logical row it
    /// touches was committed by someone else after its snapshot.
    pub fn validate(&self, table: &VersionedTable, txn: &Transaction) -> Result<()> {
        for logical in txn.write_set() {
            let last = table.last_commit_ts(logical)?;
            if last > txn.start_ts {
                return Err(FabricError::Txn(format!(
                    "write-write conflict on logical row {logical}: committed at {last} after snapshot {}",
                    txn.start_ts
                )));
            }
        }
        Ok(())
    }

    /// Apply an already-validated write set at `commit_ts`. Split out of
    /// [`Self::commit`] so the durable path can interpose its WAL append
    /// between timestamp allocation and table mutation (log-before-apply,
    /// DESIGN.md §14).
    pub fn apply(
        &self,
        mem: &mut MemoryHierarchy,
        table: &mut VersionedTable,
        txn: &Transaction,
        commit_ts: u64,
    ) -> Result<CommitReceipt> {
        let mut inserted = Vec::new();
        for w in &txn.writes {
            match w {
                WriteOp::Insert(values) => {
                    inserted.push(table.apply_insert(mem, values, commit_ts)?);
                }
                WriteOp::Update(l, updates) => table.apply_update(mem, *l, updates, commit_ts)?,
                WriteOp::Delete(l) => table.apply_delete(mem, *l, commit_ts)?,
            }
        }
        Ok(CommitReceipt {
            commit_ts,
            inserted,
        })
    }

    /// Validate and apply `txn`. On write-write conflict the transaction is
    /// rejected with [`FabricError::Txn`] and nothing is applied.
    pub fn commit(
        &self,
        mem: &mut MemoryHierarchy,
        table: &mut VersionedTable,
        txn: Transaction,
    ) -> Result<CommitReceipt> {
        self.validate(table, &txn)?;
        let commit_ts = self.oracle.allocate();
        self.apply(mem, table, &txn, commit_ts)
    }
}

impl Default for TxnManager {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::SimConfig;
    use fabric_types::{ColumnType, Schema};

    fn setup() -> (MemoryHierarchy, VersionedTable, TxnManager) {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let schema = Schema::from_pairs(&[("k", ColumnType::I64), ("v", ColumnType::I64)]);
        let t = VersionedTable::create(&mut mem, schema, 1024).unwrap();
        (mem, t, TxnManager::new())
    }

    fn insert_one(
        mem: &mut MemoryHierarchy,
        t: &mut VersionedTable,
        tm: &TxnManager,
        k: i64,
        v: i64,
    ) -> LogicalId {
        let mut txn = tm.begin();
        txn.insert(vec![Value::I64(k), Value::I64(v)]);
        tm.commit(mem, t, txn).unwrap().inserted[0]
    }

    #[test]
    fn commit_assigns_increasing_timestamps() {
        let (mut mem, mut t, tm) = setup();
        let mut txn = tm.begin();
        txn.insert(vec![Value::I64(1), Value::I64(10)]);
        let r1 = tm.commit(&mut mem, &mut t, txn).unwrap();
        let mut txn = tm.begin();
        txn.insert(vec![Value::I64(2), Value::I64(20)]);
        let r2 = tm.commit(&mut mem, &mut t, txn).unwrap();
        assert!(r2.commit_ts > r1.commit_ts);
    }

    #[test]
    fn snapshot_isolation_repeatable_reads() {
        let (mut mem, mut t, tm) = setup();
        let l = insert_one(&mut mem, &mut t, &tm, 1, 10);

        // Reader starts, then a writer commits v = 20.
        let reader = tm.begin();
        let mut writer = tm.begin();
        writer.update(l, vec![(1, Value::I64(20))]);
        tm.commit(&mut mem, &mut t, writer).unwrap();

        // The reader keeps seeing the old value (repeatable read).
        assert_eq!(
            reader.read(&mut mem, &t, l, 1).unwrap(),
            Some(Value::I64(10))
        );
        // A new reader sees the new value.
        let fresh = tm.begin();
        assert_eq!(
            fresh.read(&mut mem, &t, l, 1).unwrap(),
            Some(Value::I64(20))
        );
    }

    #[test]
    fn write_write_conflict_aborts_second_committer() {
        let (mut mem, mut t, tm) = setup();
        let l = insert_one(&mut mem, &mut t, &tm, 1, 10);

        let mut t1 = tm.begin();
        let mut t2 = tm.begin();
        t1.update(l, vec![(1, Value::I64(100))]);
        t2.update(l, vec![(1, Value::I64(200))]);

        tm.commit(&mut mem, &mut t, t1).unwrap();
        let err = tm.commit(&mut mem, &mut t, t2).unwrap_err();
        assert!(matches!(err, FabricError::Txn(_)));
        // The first committer's value survived.
        let fresh = tm.begin();
        assert_eq!(
            fresh.read(&mut mem, &t, l, 1).unwrap(),
            Some(Value::I64(100))
        );
    }

    #[test]
    fn disjoint_write_sets_both_commit() {
        let (mut mem, mut t, tm) = setup();
        let a = insert_one(&mut mem, &mut t, &tm, 1, 10);
        let b = insert_one(&mut mem, &mut t, &tm, 2, 20);

        let mut t1 = tm.begin();
        let mut t2 = tm.begin();
        t1.update(a, vec![(1, Value::I64(11))]);
        t2.update(b, vec![(1, Value::I64(21))]);
        tm.commit(&mut mem, &mut t, t1).unwrap();
        tm.commit(&mut mem, &mut t, t2).unwrap();

        let fresh = tm.begin();
        assert_eq!(
            fresh.read(&mut mem, &t, a, 1).unwrap(),
            Some(Value::I64(11))
        );
        assert_eq!(
            fresh.read(&mut mem, &t, b, 1).unwrap(),
            Some(Value::I64(21))
        );
    }

    #[test]
    fn failed_commit_applies_nothing() {
        let (mut mem, mut t, tm) = setup();
        let a = insert_one(&mut mem, &mut t, &tm, 1, 10);
        let b = insert_one(&mut mem, &mut t, &tm, 2, 20);

        let mut loser = tm.begin();
        loser.update(a, vec![(1, Value::I64(999))]);
        loser.update(b, vec![(1, Value::I64(999))]);
        loser.insert(vec![Value::I64(3), Value::I64(30)]);

        let mut winner = tm.begin();
        winner.update(a, vec![(1, Value::I64(11))]);
        tm.commit(&mut mem, &mut t, winner).unwrap();

        let versions_before = t.version_count();
        assert!(tm.commit(&mut mem, &mut t, loser).is_err());
        assert_eq!(t.version_count(), versions_before);
        let fresh = tm.begin();
        assert_eq!(
            fresh.read(&mut mem, &t, b, 1).unwrap(),
            Some(Value::I64(20))
        );
        assert_eq!(t.logical_len(), 2); // the loser's insert never happened
    }

    #[test]
    fn read_only_transactions_never_conflict() {
        let (mut mem, mut t, tm) = setup();
        let l = insert_one(&mut mem, &mut t, &tm, 1, 10);
        let ro = tm.begin();
        let mut w = tm.begin();
        w.update(l, vec![(1, Value::I64(99))]);
        tm.commit(&mut mem, &mut t, w).unwrap();
        assert!(ro.is_read_only());
        let r = tm.commit(&mut mem, &mut t, ro).unwrap();
        assert!(r.inserted.is_empty());
    }

    #[test]
    fn write_set_dedups() {
        let (_, _, tm) = setup();
        let mut txn = tm.begin();
        txn.update(5, vec![(0, Value::I64(1))]);
        txn.update(5, vec![(1, Value::I64(2))]);
        txn.delete(7);
        txn.insert(vec![]);
        assert_eq!(txn.write_set(), vec![5, 7]);
    }
}
