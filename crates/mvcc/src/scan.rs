//! Analytical scans over versioned data: the hardware visibility path
//! (Relational Memory filters timestamps while gathering, §III-C) versus
//! the software baseline (the CPU reads and checks the timestamp fields of
//! every version).

use crate::table::VersionedTable;
use fabric_sim::MemoryHierarchy;
use fabric_types::{le_array, ColumnId, Result, Value};
use relmem::{EphemeralColumns, RmConfig};

/// Software baseline: scan every physical version, evaluate visibility on
/// the CPU, and sum `col` over the visible ones. Returns `(sum, visible
/// rows)`.
pub fn sw_visible_sum(
    mem: &mut MemoryHierarchy,
    table: &VersionedTable,
    col: ColumnId,
    ts: u64,
) -> Result<(f64, u64)> {
    let costs = mem.costs();
    let inner = table.physical();
    let layout = inner.layout();
    let begin_r = layout.range(table.user_cols())?;
    let end_r = layout.range(table.user_cols() + 1)?;
    let col_r = layout.range(col)?;
    let col_ty = layout.column_type(col)?;
    let w = layout.row_width();

    let mut sum = 0.0f64;
    let mut visible = 0u64;
    for rid in 0..inner.len() {
        let addr = inner.row_addr(rid);
        // The CPU must read both timestamp fields and the payload column.
        mem.touch_read_gather(&[
            (addr + begin_r.start as u64, 16), // begin + end are adjacent
            (addr + col_r.start as u64, col_ty.width()),
        ]);
        mem.cpu(costs.vector_elem + costs.value_op * 2);
        let row = mem.bytes(addr, w);
        let begin = u64::from_le_bytes(le_array(&row[begin_r.clone()]));
        let end = u64::from_le_bytes(le_array(&row[end_r.clone()]));
        let value = Value::decode(col_ty, &row[col_r.clone()]);
        if begin <= ts && (end == 0 || ts < end) {
            mem.cpu(costs.f64_op);
            sum += value.as_f64()?;
            visible += 1;
        } else {
            mem.cpu(costs.branch_miss);
        }
    }
    Ok((sum, visible))
}

/// Hardware path: the RM device applies the timestamp filter while
/// gathering, so only visible rows' payload reaches the CPU.
pub fn rm_visible_sum(
    mem: &mut MemoryHierarchy,
    table: &VersionedTable,
    col: ColumnId,
    ts: u64,
    cfg: RmConfig,
) -> Result<(f64, u64)> {
    let costs = mem.costs();
    let g = table.geometry_at(&[col], ts)?;
    let mut eph = EphemeralColumns::configure(mem, cfg, g)?;
    let mut sum = 0.0f64;
    let mut visible = 0u64;
    while let Some(b) = eph.next_batch(mem) {
        for r in 0..b.len() {
            mem.cpu(costs.vector_elem + costs.f64_op);
            sum += b.value(r, 0).as_f64()?;
        }
        visible += b.len() as u64;
    }
    Ok((sum, visible))
}

/// Collect all user columns of all rows visible at `ts` (verification
/// helper; timed like a software scan).
pub fn collect_visible(
    mem: &mut MemoryHierarchy,
    table: &VersionedTable,
    ts: u64,
) -> Result<Vec<Vec<Value>>> {
    let inner = table.physical();
    let layout = inner.layout();
    let w = layout.row_width();
    let begin_r = layout.range(table.user_cols())?;
    let end_r = layout.range(table.user_cols() + 1)?;
    let mut out = Vec::new();
    for rid in 0..inner.len() {
        let addr = inner.row_addr(rid);
        mem.touch_read(addr, w);
        let row = mem.bytes(addr, w);
        let begin = u64::from_le_bytes(le_array(&row[begin_r.clone()]));
        let end = u64::from_le_bytes(le_array(&row[end_r.clone()]));
        if begin <= ts && (end == 0 || ts < end) {
            let mut vals = inner.decode_row_untimed(mem, rid)?;
            vals.truncate(table.user_cols());
            out.push(vals);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::TxnManager;
    use fabric_sim::SimConfig;
    use fabric_types::{ColumnType, Schema};

    /// A small history: 100 logical rows, half updated, a quarter deleted.
    fn setup() -> (MemoryHierarchy, VersionedTable, TxnManager, u64) {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let schema = Schema::from_pairs(&[("k", ColumnType::I64), ("v", ColumnType::I64)]);
        let mut t = VersionedTable::create(&mut mem, schema, 4096).unwrap();
        let tm = TxnManager::new();
        let mut ids = Vec::new();
        for k in 0..100i64 {
            let mut txn = tm.begin();
            txn.insert(vec![Value::I64(k), Value::I64(k)]);
            ids.push(tm.commit(&mut mem, &mut t, txn).unwrap().inserted[0]);
        }
        let mid_ts = tm.snapshot_ts();
        for (k, &l) in ids.iter().enumerate() {
            if k % 2 == 0 {
                let mut txn = tm.begin();
                txn.update(l, vec![(1, Value::I64(k as i64 + 1000))]);
                tm.commit(&mut mem, &mut t, txn).unwrap();
            }
            if k % 4 == 1 {
                let mut txn = tm.begin();
                txn.delete(l);
                tm.commit(&mut mem, &mut t, txn).unwrap();
            }
        }
        (mem, t, tm, mid_ts)
    }

    #[test]
    fn sw_and_rm_paths_agree_at_every_snapshot() {
        let (mut mem, t, tm, mid_ts) = setup();
        for ts in [mid_ts, tm.snapshot_ts(), 1, 50] {
            let (sw_sum, sw_n) = sw_visible_sum(&mut mem, &t, 1, ts).unwrap();
            let (rm_sum, rm_n) =
                rm_visible_sum(&mut mem, &t, 1, ts, RmConfig::prototype()).unwrap();
            assert_eq!(sw_n, rm_n, "row counts differ at ts={ts}");
            assert_eq!(sw_sum, rm_sum, "sums differ at ts={ts}");
        }
    }

    #[test]
    fn mid_snapshot_sees_pre_update_state() {
        let (mut mem, t, _, mid_ts) = setup();
        let (sum, n) = sw_visible_sum(&mut mem, &t, 1, mid_ts).unwrap();
        assert_eq!(n, 100);
        assert_eq!(sum, (0..100i64).sum::<i64>() as f64);
    }

    #[test]
    fn final_snapshot_reflects_updates_and_deletes() {
        let (mut mem, t, tm, _) = setup();
        let (_, n) = sw_visible_sum(&mut mem, &t, 1, tm.snapshot_ts()).unwrap();
        assert_eq!(n, 75); // 25 of 100 deleted
        let rows = collect_visible(&mut mem, &t, tm.snapshot_ts()).unwrap();
        assert_eq!(rows.len(), 75);
        // Updated rows carry their new values.
        let v0 = rows.iter().find(|r| r[0] == Value::I64(0)).unwrap();
        assert_eq!(v0[1], Value::I64(1000));
    }

    #[test]
    fn rm_device_filters_rows_not_just_values() {
        let (mut mem, t, tm, _) = setup();
        let g = t.geometry_at(&[0], tm.snapshot_ts()).unwrap();
        let mut eph = EphemeralColumns::configure(&mut mem, RmConfig::prototype(), g).unwrap();
        let mut rows = 0;
        while let Some(b) = eph.next_batch(&mut mem) {
            rows += b.len();
        }
        assert_eq!(rows, 75);
        // The device scanned every version but emitted only visible ones.
        assert!(eph.stats().rows_scanned as usize == t.version_count());
        assert_eq!(eph.stats().rows_emitted, 75);
    }
}
