//! Multi-version concurrency control over row-oriented base data
//! (paper §III-C).
//!
//! The Relational Fabric design keeps *one* copy of the data — the
//! row-oriented base table — and gives transactions snapshot isolation with
//! two timestamp fields per row:
//!
//! > *"The first timestamp is set when a row is inserted to mark the
//! > beginning of its validity, while the second timestamp is set upon row
//! > deletion or replacement by a newer version, marking the end of its
//! > validity. Every time the API is accessed, it generates the column
//! > groups that contain the valid rows at the time of the query."*
//!
//! * [`oracle::TimestampOracle`] issues monotonically increasing
//!   timestamps;
//! * [`txn`] implements buffered-write transactions with first-committer-
//!   wins write-write conflict detection;
//! * [`table::VersionedTable`] stores every version as an ordinary row of
//!   the base table, appending new versions on update and stamping
//!   `end_ts` on the superseded one — updates never rewrite old versions
//!   in place, so readers need no locks;
//! * analytical readers obtain a [`fabric_types::Geometry`] whose
//!   [`fabric_types::TsFilter`] the RM device evaluates while gathering —
//!   the paper's *"timestamp comparison implemented in hardware"*. A
//!   software visibility scan ([`scan`]) is provided as the baseline the
//!   ablation benchmarks compare against;
//! * [`durable::DurableStore`] makes the commit path crash-consistent:
//!   WAL-before-apply over a `durability::DurableMedia`, periodic
//!   checkpoints, and [`durable::DurableStore::replay`] recovery
//!   (DESIGN.md §14), with the byte codecs in [`wal`].

pub mod durable;
pub mod oracle;
pub mod scan;
pub mod table;
pub mod txn;
pub mod wal;

pub use durable::{DurableStore, RecoveryReport};
pub use oracle::TimestampOracle;
pub use table::{LogicalId, VersionedTable};
pub use txn::{CommitReceipt, Transaction, TxnManager};
