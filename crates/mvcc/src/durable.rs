//! The crash-consistent commit path: WAL-before-apply, periodic
//! checkpoints, and `replay()` recovery (DESIGN.md §14).
//!
//! [`DurableStore`] wraps a [`VersionedTable`] + [`TxnManager`] pair
//! around one [`durability::DurableMedia`] and enforces the commit
//! protocol:
//!
//! 1. validate (first-committer-wins, unchanged);
//! 2. precheck the volatile apply (arity, column range, liveness,
//!    version capacity) — a record must never become durable unless the
//!    table mutation it describes will succeed;
//! 3. allocate the commit timestamp;
//! 4. append the encoded write set to the WAL — **only if this durable
//!    write succeeds** does the commit proceed;
//! 5. apply the write set to the volatile table;
//! 6. maybe take a cadence checkpoint — whose failure does **not** fail
//!    the commit (the transaction is already durable); it is surfaced via
//!    [`DurableStore::take_checkpoint_failure`].
//!
//! A power cut can strike step 4 after the record is fully on the medium
//! but before the acknowledgement: the caller sees
//! [`fabric_types::FabricError::PowerLoss`] yet recovery will resurrect
//! the transaction. That *commit ambiguity* is fundamental to write-ahead
//! logging and the crash-matrix tests accept either outcome for the one
//! in-flight transaction. Should step 5 ever fail despite the precheck,
//! the store is *poisoned* — commits and checkpoints refuse to run so the
//! volatile/durable divergence can never be persisted.
//!
//! [`DurableStore::replay`] rebuilds everything from what physically
//! survived ([`durability::DurableImage`]): it picks the newest checkpoint
//! whose blob passes its page CRCs (falling back to older ones — or to an
//! empty table — on torn pages, flagged as a degraded recovery), restores
//! the physical table, re-applies the log tail, and resumes the oracle
//! above the recovered watermark. The torn tail a crash left on the log
//! is truncated from the reopened medium, so post-recovery appends land
//! right after the last valid record — an acknowledged post-recovery
//! commit survives any later restart. Replay is idempotent: it only
//! reads the image, so replaying twice yields bit-identical state.

use crate::table::{LogicalId, VersionedTable, BEGIN_COL, END_COL};
use crate::txn::{CommitReceipt, Transaction, TxnManager, WriteOp};
use crate::wal as codec;
use durability::{DurabilityConfig, DurableImage, DurableMedia, RecordKind, WalRecord};
use fabric_sim::{Category, MemoryHierarchy};
use fabric_types::{ColumnDef, ColumnType, FabricError, Result, Schema, Value};

/// What `replay()` found and did, for tests, postmortems, and the
/// engine's degraded-mode surfacing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Blob id of the checkpoint restored from, if any.
    pub checkpoint_used: Option<u64>,
    /// Valid records found in the log's intact prefix.
    pub records_scanned: usize,
    /// Commit records re-applied on top of the checkpoint.
    pub commits_replayed: u64,
    /// Torn-tail bytes truncated from the log.
    pub truncated_bytes: usize,
    /// Recovered oracle watermark (latest durable commit timestamp).
    pub watermark: u64,
    /// Why recovery had less than the best state to work with (e.g. the
    /// newest checkpoint blob was torn); `None` for a clean recovery.
    pub degraded: Option<String>,
}

impl RecoveryReport {
    /// Deterministic JSON rendering, embedded verbatim in the flight
    /// recorder's postmortem `"context"` field (same document for the
    /// same image, byte for byte).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(160);
        out.push_str("{\"checkpoint_used\":");
        match self.checkpoint_used {
            Some(id) => {
                let _ignored = write!(out, "{id}");
            }
            None => out.push_str("null"),
        }
        let _ignored = write!(
            out,
            ",\"records_scanned\":{},\"commits_replayed\":{},\
             \"truncated_bytes\":{},\"watermark\":{},\"degraded\":",
            self.records_scanned, self.commits_replayed, self.truncated_bytes, self.watermark,
        );
        match &self.degraded {
            Some(why) => {
                let _ignored = write!(out, "\"{}\"", fabric_sim::escaped(why));
            }
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}

/// A versioned table whose commits survive power loss.
pub struct DurableStore {
    table: VersionedTable,
    tm: TxnManager,
    media: DurableMedia,
    user_schema: Schema,
    capacity: usize,
    /// Take a checkpoint every this many commits (0 = only on demand).
    checkpoint_every: u64,
    commits_since_ckpt: u64,
    next_ckpt_id: u64,
    /// Set when a volatile apply failed *after* its WAL append succeeded:
    /// the table diverged from the log and only `replay()` can reconcile
    /// them. Never set in practice — `precheck_apply` rejects every known
    /// apply failure before the append — but kept as a backstop so the
    /// divergence can never be committed or checkpointed.
    poisoned: bool,
    /// Failure of the most recent cadence checkpoint. The commit that
    /// triggered it still returned its receipt (the transaction *is*
    /// durable); callers retrieve this out-of-band via
    /// [`Self::take_checkpoint_failure`].
    last_ckpt_failure: Option<FabricError>,
}

impl DurableStore {
    /// A fresh store over an empty durable medium.
    pub fn create(
        mem: &mut MemoryHierarchy,
        user_schema: Schema,
        capacity: usize,
        cfg: DurabilityConfig,
        checkpoint_every: u64,
    ) -> Result<Self> {
        let table = VersionedTable::create(mem, user_schema.clone(), capacity)?;
        Ok(DurableStore {
            table,
            tm: TxnManager::new(),
            media: DurableMedia::new(cfg),
            user_schema,
            capacity,
            checkpoint_every,
            commits_since_ckpt: 0,
            next_ckpt_id: 1,
            poisoned: false,
            last_ckpt_failure: None,
        })
    }

    pub fn table(&self) -> &VersionedTable {
        &self.table
    }

    pub fn media(&self) -> &DurableMedia {
        &self.media
    }

    pub fn user_schema(&self) -> &Schema {
        &self.user_schema
    }

    /// Physical version capacity the table was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Begin a transaction at the current snapshot.
    pub fn begin(&self) -> Transaction {
        self.tm.begin()
    }

    /// The current oracle watermark.
    pub fn snapshot_ts(&self) -> u64 {
        self.tm.snapshot_ts()
    }

    /// Snapshot read through a transaction (delegates to the table).
    pub fn read(
        &self,
        mem: &mut MemoryHierarchy,
        txn: &Transaction,
        logical: LogicalId,
        col: usize,
    ) -> Result<Option<Value>> {
        txn.read(mem, &self.table, logical, col)
    }

    /// Commit with the WAL-before-apply protocol. Read-only transactions
    /// skip both the timestamp allocation and the log append — they leave
    /// no durable trace, so replay reproduces the same watermark.
    ///
    /// `Ok(receipt)` means the transaction is durable and applied. A
    /// failing *cadence* checkpoint does not turn the result into an
    /// error — the transaction already committed; the checkpoint failure
    /// is surfaced out-of-band via [`Self::take_checkpoint_failure`].
    /// `Err` means the transaction did not commit, with one exception
    /// inherent to write-ahead logging: [`FabricError::PowerLoss`] from
    /// the log append is ambiguous (the record may be fully durable), and
    /// recovery may legitimately resurrect that one transaction.
    pub fn commit(&mut self, mem: &mut MemoryHierarchy, txn: Transaction) -> Result<CommitReceipt> {
        self.check_usable()?;
        if txn.is_read_only() {
            return Ok(CommitReceipt {
                commit_ts: self.tm.snapshot_ts(),
                inserted: Vec::new(),
            });
        }
        self.tm.validate(&self.table, &txn)?;
        // Reject, *before* anything durable happens, every write set the
        // volatile apply would refuse: a record must never reach the log
        // unless the table mutation it describes will succeed, or the
        // volatile state diverges from the durable one and replay() hits
        // the same apply error — an unrecoverable image.
        self.precheck_apply(mem, &txn)?;
        let commit_ts = self.tm.oracle().allocate();
        let payload = codec::encode_commit(&self.user_schema, txn.id, commit_ts, txn.writes())?;
        self.media
            .append_record(mem, RecordKind::Commit, &payload)?;
        let receipt = match self.tm.apply(mem, &mut self.table, &txn, commit_ts) {
            Ok(r) => r,
            Err(e) => {
                // The record is durable but the table rejected it: the
                // two views diverged. Poison the store — every later
                // commit or checkpoint would persist the divergence.
                self.poisoned = true;
                mem.metrics_mut().counter_add("durability.poisoned", 1);
                return Err(FabricError::Storage(format!(
                    "commit {commit_ts} is durable but its volatile apply failed ({e}); \
                     store poisoned — reopen via replay"
                )));
            }
        };
        self.commits_since_ckpt += 1;
        if self.checkpoint_every > 0 && self.commits_since_ckpt >= self.checkpoint_every {
            if let Err(e) = self.checkpoint(mem) {
                mem.metrics_mut()
                    .counter_add("durability.ckpt.failures_deferred", 1);
                self.last_ckpt_failure = Some(e);
            }
        }
        Ok(receipt)
    }

    /// Failure of the most recent cadence checkpoint, if any. The commit
    /// that triggered it still returned its receipt — that transaction is
    /// durable; only the checkpoint is missing, so replay just reads a
    /// longer log tail. A [`FabricError::PowerLoss`] here means the
    /// device is down: every later durable operation fails until the
    /// store is reopened via [`Self::replay`].
    pub fn take_checkpoint_failure(&mut self) -> Option<FabricError> {
        self.last_ckpt_failure.take()
    }

    /// Did a volatile apply ever fail after its WAL append? A poisoned
    /// store refuses commits and checkpoints; reopen via [`Self::replay`].
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    fn check_usable(&self) -> Result<()> {
        if self.poisoned {
            return Err(FabricError::Storage(
                "store is poisoned (volatile state diverged from the log); \
                 reopen via replay"
                    .into(),
            ));
        }
        Ok(())
    }

    /// Everything that could make [`TxnManager::apply`] fail, checked
    /// before the WAL append: insert arity, update column range, liveness
    /// of updated/deleted rows (tracking deletes earlier in the same
    /// write set), and physical version capacity. Charges nothing.
    fn precheck_apply(&self, mem: &mut MemoryHierarchy, txn: &Transaction) -> Result<()> {
        let user_cols = self.user_schema.len();
        let mut new_versions = 0usize;
        let mut fresh = 0usize;
        let mut dead: Vec<LogicalId> = Vec::new();
        for w in txn.writes() {
            match w {
                WriteOp::Insert(values) => {
                    if values.len() != user_cols {
                        return Err(FabricError::Txn(format!(
                            "insert has {} values, schema has {user_cols} columns",
                            values.len()
                        )));
                    }
                    new_versions += 1;
                    fresh += 1;
                }
                WriteOp::Update(l, updates) => {
                    for (col, _) in updates {
                        if *col >= user_cols {
                            return Err(FabricError::ColumnIndexOutOfRange {
                                index: *col,
                                len: user_cols,
                            });
                        }
                    }
                    self.precheck_live(mem, *l, fresh, &dead)?;
                    new_versions += 1;
                }
                WriteOp::Delete(l) => {
                    self.precheck_live(mem, *l, fresh, &dead)?;
                    dead.push(*l);
                }
            }
        }
        let free = self.capacity - self.table.version_count();
        if new_versions > free {
            return Err(FabricError::Txn(format!(
                "commit needs {new_versions} new versions but only {free} of {} remain; \
                 rejected before the WAL append",
                self.capacity
            )));
        }
        Ok(())
    }

    /// Is `l` a live (undeleted) row from this write set's viewpoint —
    /// counting `fresh` rows inserted and `dead` rows deleted by earlier
    /// ops of the same transaction?
    fn precheck_live(
        &self,
        mem: &mut MemoryHierarchy,
        l: LogicalId,
        fresh: usize,
        dead: &[LogicalId],
    ) -> Result<()> {
        if dead.contains(&l) {
            return Err(FabricError::Txn(format!("logical row {l} is deleted")));
        }
        let known = self.table.logical_len();
        if l < known {
            if !self.table.latest_is_live(mem, l)? {
                return Err(FabricError::Txn(format!("logical row {l} is deleted")));
            }
            Ok(())
        } else if l < known + fresh {
            Ok(())
        } else {
            Err(FabricError::Txn(format!("unknown logical row {l}")))
        }
    }

    /// Take a checkpoint now: write the blob pages, then log the ref.
    /// Returns the blob id.
    pub fn checkpoint(&mut self, mem: &mut MemoryHierarchy) -> Result<u64> {
        self.check_usable()?;
        let watermark = self.tm.snapshot_ts();
        let payload = codec::encode_checkpoint(mem, &self.table, watermark)?;
        let id = self.next_ckpt_id;
        self.next_ckpt_id += 1;
        self.media.write_checkpoint(mem, id, &payload)?;
        self.media.append_record(
            mem,
            RecordKind::Checkpoint,
            &codec::encode_checkpoint_ref(id, watermark),
        )?;
        self.commits_since_ckpt = 0;
        Ok(id)
    }

    /// Tear down the volatile half and keep what a power cut keeps.
    pub fn crash_image(self) -> DurableImage {
        self.media.into_survivor()
    }

    /// All user rows visible at the current watermark, in physical order.
    pub fn snapshot_rows(&self, mem: &mut MemoryHierarchy) -> Result<Vec<Vec<Value>>> {
        self.table.snapshot_rows(mem, self.tm.snapshot_ts())
    }

    /// Rebuild a store from the surviving durable image.
    ///
    /// Deterministic and read-only with respect to the image, hence
    /// idempotent; the rebuilt store's medium restarts its fault plan
    /// from `cfg` (a recovered run schedules its own crashes).
    pub fn replay(
        mem: &mut MemoryHierarchy,
        user_schema: Schema,
        capacity: usize,
        image: DurableImage,
        cfg: DurabilityConfig,
        checkpoint_every: u64,
    ) -> Result<(Self, RecoveryReport)> {
        // Arm the flight recorder across recovery: the postmortem dumped
        // at the end reports the metrics delta of recovery itself, not of
        // whatever the process did before the restart.
        mem.flight_arm();
        mem.trace_begin("replay", Category::Store);
        let result = Self::replay_phases(mem, user_schema, capacity, image, cfg, checkpoint_every);
        match &result {
            Ok((_, report)) => mem.trace_end(
                "replay",
                Category::Store,
                &[
                    ("records", report.records_scanned as u64),
                    ("commits", report.commits_replayed),
                    ("watermark", report.watermark),
                ],
            ),
            Err(_) => mem.trace_end("replay", Category::Store, &[("error", 1)]),
        }
        let (store, report) = result?;
        {
            let mut rp = mem.metrics_mut().scoped("durability.replay");
            rp.counter_add("count", 1);
            rp.counter_add("records", report.records_scanned as u64);
            rp.counter_add("commits", report.commits_replayed);
            rp.counter_add("truncated_tail_bytes", report.truncated_bytes as u64);
            if report.degraded.is_some() {
                rp.counter_add("degraded", 1);
            }
            rp.gauge_set("watermark", report.watermark as f64);
        }
        let reason = if report.degraded.is_some() {
            "recovery-degraded"
        } else {
            "crash-recovery"
        };
        mem.flight_dump_with(reason, report.to_json());
        Ok((store, report))
    }

    /// The three recovery phases — log scan, checkpoint load, log
    /// reapply — each under its own balanced span. Fallible work runs
    /// inside per-phase closures so the span closes before an error
    /// propagates: even a failing recovery exports a validator-clean
    /// trace.
    fn replay_phases(
        mem: &mut MemoryHierarchy,
        user_schema: Schema,
        capacity: usize,
        image: DurableImage,
        cfg: DurabilityConfig,
        checkpoint_every: u64,
    ) -> Result<(Self, RecoveryReport)> {
        // Phase 1: scan the surviving log image and truncate the torn
        // tail from it before reopening the device — post-recovery
        // appends must land right after the last valid record. Left in
        // place, the garbage would end every future scan early and
        // silently discard each commit acknowledged after this recovery.
        mem.trace_begin("replay-scan", Category::Store);
        let (records, truncated_bytes) = durability::scan(image.log_bytes());
        let mut image = image;
        image.truncate_log_tail(truncated_bytes);
        let media = DurableMedia::from_image(cfg, image);
        mem.trace_end(
            "replay-scan",
            Category::Store,
            &[
                ("records", records.len() as u64),
                ("truncated_bytes", truncated_bytes as u64),
            ],
        );

        // Phase 2: newest checkpoint whose blob reads back clean wins;
        // torn or incomplete blobs degrade us to the next older one
        // (ultimately to a full log replay from an empty table).
        mem.trace_begin("replay-ckpt-load", Category::Store);
        let mut degraded = None;
        let loaded = (|| -> Result<_> {
            let mut chosen: Option<(u64, &WalRecord, codec::CheckpointImage)> = None;
            let full_schema = full_schema_of(&user_schema);
            for rec in records.iter().rev() {
                if rec.kind != RecordKind::Checkpoint {
                    continue;
                }
                let (id, _watermark) = codec::decode_checkpoint_ref(&rec.payload)?;
                match media
                    .read_checkpoint(id)
                    .and_then(|bytes| codec::decode_checkpoint(&full_schema, &bytes))
                {
                    Ok(img) => {
                        chosen = Some((id, rec, img));
                        break;
                    }
                    Err(e) => {
                        if degraded.is_none() {
                            degraded = Some(format!("checkpoint {id} unreadable: {e}"));
                        }
                    }
                }
            }
            match chosen {
                Some((id, rec, img)) => {
                    let t = VersionedTable::restore(
                        mem,
                        user_schema.clone(),
                        capacity,
                        &img.rows,
                        img.chains,
                        img.last_commit,
                    )?;
                    Ok((t, img.watermark, Some(rec.lsn), Some(id)))
                }
                None => Ok((
                    VersionedTable::create(mem, user_schema.clone(), capacity)?,
                    0,
                    None,
                    None,
                )),
            }
        })();
        mem.trace_end(
            "replay-ckpt-load",
            Category::Store,
            &[(
                "checkpoint",
                loaded
                    .as_ref()
                    .ok()
                    .and_then(|(_, _, _, id)| *id)
                    .unwrap_or(0),
            )],
        );
        let (mut table, ckpt_watermark, ckpt_lsn, checkpoint_used) = loaded?;

        // Phase 3: re-apply every commit the checkpoint does not already
        // contain. Commit records are logged before their effects, in
        // commit-ts order, so applying in log order reproduces the exact
        // physical row order of the original run.
        mem.trace_begin("replay-reapply", Category::Store);
        let mut watermark = ckpt_watermark;
        let mut commits_replayed = 0u64;
        let reapplied = (|| -> Result<()> {
            for rec in &records {
                if rec.kind != RecordKind::Commit {
                    continue;
                }
                if let Some(lsn) = ckpt_lsn {
                    if rec.lsn < lsn {
                        continue;
                    }
                }
                let img = codec::decode_commit(&user_schema, &rec.payload)?;
                for w in &img.writes {
                    match w {
                        WriteOp::Insert(values) => {
                            table.apply_insert(mem, values, img.commit_ts)?;
                        }
                        WriteOp::Update(l, updates) => {
                            table.apply_update(mem, *l, updates, img.commit_ts)?;
                        }
                        WriteOp::Delete(l) => table.apply_delete(mem, *l, img.commit_ts)?,
                    }
                }
                watermark = watermark.max(img.commit_ts);
                commits_replayed += 1;
            }
            Ok(())
        })();
        mem.trace_end(
            "replay-reapply",
            Category::Store,
            &[("commits", commits_replayed), ("watermark", watermark)],
        );
        reapplied?;

        let report = RecoveryReport {
            checkpoint_used,
            records_scanned: records.len(),
            commits_replayed,
            truncated_bytes,
            watermark,
            degraded,
        };
        let next_id = report.checkpoint_used.map_or(1, |id| id + 1);
        Ok((
            DurableStore {
                table,
                tm: TxnManager::starting_at(watermark + 1),
                media,
                user_schema,
                capacity,
                checkpoint_every,
                commits_since_ckpt: 0,
                next_ckpt_id: next_id,
                poisoned: false,
                last_ckpt_failure: None,
            },
            report,
        ))
    }
}

/// The physical schema a [`VersionedTable`] uses for `user_schema`.
fn full_schema_of(user_schema: &Schema) -> Schema {
    let mut cols: Vec<ColumnDef> = user_schema.columns().to_vec();
    cols.push(ColumnDef::new(BEGIN_COL, ColumnType::I64));
    cols.push(ColumnDef::new(END_COL, ColumnType::I64));
    Schema::new(cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::{FaultConfig, SimConfig};
    use fabric_types::{FabricError, Value};

    fn mem() -> MemoryHierarchy {
        MemoryHierarchy::new(SimConfig::zynq_a53())
    }

    fn schema() -> Schema {
        Schema::from_pairs(&[("k", ColumnType::I64), ("v", ColumnType::I64)])
    }

    fn quiet(seed: u64) -> DurabilityConfig {
        DurabilityConfig::quiet(seed)
    }

    fn commit_kv(
        mem: &mut MemoryHierarchy,
        s: &mut DurableStore,
        k: i64,
        v: i64,
    ) -> Result<CommitReceipt> {
        let mut txn = s.begin();
        txn.insert(vec![Value::I64(k), Value::I64(v)]);
        s.commit(mem, txn)
    }

    #[test]
    fn committed_transactions_survive_a_clean_restart() {
        let mut m = mem();
        let mut s = DurableStore::create(&mut m, schema(), 1024, quiet(1), 0).unwrap();
        commit_kv(&mut m, &mut s, 1, 10).unwrap();
        commit_kv(&mut m, &mut s, 2, 20).unwrap();
        let before = s.snapshot_rows(&mut m).unwrap();
        let watermark = s.snapshot_ts();

        let image = s.crash_image();
        let (r, report) = DurableStore::replay(&mut m, schema(), 1024, image, quiet(1), 0).unwrap();
        assert_eq!(report.watermark, watermark);
        assert_eq!(report.commits_replayed, 2);
        assert_eq!(report.checkpoint_used, None);
        assert!(report.degraded.is_none());
        assert_eq!(r.snapshot_rows(&mut m).unwrap(), before);
        // The oracle resumes above the watermark: new commits go after.
        let mut r = r;
        let receipt = commit_kv(&mut m, &mut r, 3, 30).unwrap();
        assert!(receipt.commit_ts > watermark);
    }

    #[test]
    fn checkpoint_bounds_replay_and_preserves_answers() {
        let mut m = mem();
        // Checkpoint every 4 commits.
        let mut s = DurableStore::create(&mut m, schema(), 1024, quiet(2), 4).unwrap();
        let mut logicals = Vec::new();
        for i in 0..10i64 {
            logicals.push(commit_kv(&mut m, &mut s, i, i * 10).unwrap().inserted[0]);
        }
        let mut txn = s.begin();
        txn.update(logicals[0], vec![(1, Value::I64(999))]);
        txn.delete(logicals[1]);
        s.commit(&mut m, txn).unwrap();
        let before = s.snapshot_rows(&mut m).unwrap();
        let watermark = s.snapshot_ts();

        let image = s.crash_image();
        let (r, report) = DurableStore::replay(&mut m, schema(), 1024, image, quiet(2), 4).unwrap();
        assert!(report.checkpoint_used.is_some());
        assert!(
            report.commits_replayed < 11,
            "checkpoint must bound the log tail, replayed {}",
            report.commits_replayed
        );
        assert_eq!(report.watermark, watermark);
        assert_eq!(r.snapshot_rows(&mut m).unwrap(), before);
    }

    #[test]
    fn replay_is_idempotent() {
        let mut m = mem();
        let mut s = DurableStore::create(&mut m, schema(), 1024, quiet(3), 3).unwrap();
        for i in 0..8i64 {
            commit_kv(&mut m, &mut s, i, i).unwrap();
        }
        let image = s.crash_image();
        let (a, ra) =
            DurableStore::replay(&mut m, schema(), 1024, image.clone(), quiet(3), 3).unwrap();
        let (b, rb) = DurableStore::replay(&mut m, schema(), 1024, image, quiet(3), 3).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(
            a.snapshot_rows(&mut m).unwrap(),
            b.snapshot_rows(&mut m).unwrap()
        );
        // Replay of a replayed store's image is also stable.
        let again = a.crash_image();
        let (c, rc) = DurableStore::replay(&mut m, schema(), 1024, again, quiet(3), 3).unwrap();
        assert_eq!(rc.watermark, rb.watermark);
        assert_eq!(
            c.snapshot_rows(&mut m).unwrap(),
            b.snapshot_rows(&mut m).unwrap()
        );
    }

    #[test]
    fn power_loss_during_commit_preserves_prior_commits() {
        let mut m = mem();
        let cfg = quiet(4).with_faults(FaultConfig::quiet(4).with_crash_at(3));
        let mut s = DurableStore::create(&mut m, schema(), 1024, cfg, 0).unwrap();
        commit_kv(&mut m, &mut s, 1, 10).unwrap();
        commit_kv(&mut m, &mut s, 2, 20).unwrap();
        let err = commit_kv(&mut m, &mut s, 3, 30);
        assert!(matches!(err, Err(FabricError::PowerLoss { .. })));

        let image = s.crash_image();
        let (r, report) = DurableStore::replay(&mut m, schema(), 1024, image, quiet(4), 0).unwrap();
        let rows = r.snapshot_rows(&mut m).unwrap();
        // Both acknowledged commits are there; the in-flight one is
        // either fully present or fully absent (commit ambiguity).
        assert!(
            rows.len() == 2 || rows.len() == 3,
            "got {} rows",
            rows.len()
        );
        assert_eq!(rows[0], vec![Value::I64(1), Value::I64(10)]);
        assert_eq!(rows[1], vec![Value::I64(2), Value::I64(20)]);
        assert_eq!(report.commits_replayed as usize, rows.len());
    }

    #[test]
    fn torn_checkpoint_degrades_to_full_log_replay() {
        let mut m = mem();
        let cfg = quiet(5).with_faults(FaultConfig {
            torn_write_prob: 1.0,
            ..FaultConfig::quiet(5)
        });
        let mut s = DurableStore::create(&mut m, schema(), 1024, cfg, 0).unwrap();
        for i in 0..5i64 {
            commit_kv(&mut m, &mut s, i, i * 2).unwrap();
        }
        // Big enough that the blob spans pages and *will* tear.
        s.checkpoint(&mut m).unwrap();
        let expect: Vec<Vec<Value>> = (0..5i64)
            .map(|i| vec![Value::I64(i), Value::I64(i * 2)])
            .collect();
        let image = s.crash_image();
        let (r, report) = DurableStore::replay(&mut m, schema(), 1024, image, quiet(5), 0).unwrap();
        assert!(report.degraded.is_some(), "torn blob must be flagged");
        assert_eq!(report.checkpoint_used, None);
        assert_eq!(report.commits_replayed, 5);
        assert_eq!(r.snapshot_rows(&mut m).unwrap(), expect);
        // The degraded recovery dumped a postmortem whose context embeds
        // this exact report, and the durability.replay.* rollup advanced.
        let pm = m
            .take_postmortems()
            .into_iter()
            .find(|p| p.reason == "recovery-degraded")
            .expect("degraded recovery dumps a postmortem");
        assert_eq!(pm.context.as_deref(), Some(report.to_json().as_str()));
        let doc = fabric_sim::parse_json(&pm.to_json()).expect("postmortem parses");
        assert_eq!(
            doc.get("context")
                .and_then(|c| c.get("degraded"))
                .and_then(fabric_sim::Json::as_str),
            report.degraded.as_deref()
        );
        assert_eq!(m.metrics().counter("durability.replay.degraded"), 1);
        assert_eq!(m.metrics().counter("durability.replay.commits"), 5);
    }

    #[test]
    fn post_recovery_commits_survive_a_torn_tail_truncation() {
        // The REVIEW.md regression: a crash that leaves a *partial* frame
        // on the log, a recovery, an acknowledged fault-free commit, and
        // a clean restart — the commit must still be there. Sweep a small
        // deterministic (seed, crash_at) grid until a partial tail shows
        // up (crash_keep must land strictly inside the frame).
        let mut exercised = false;
        'sweep: for seed in 0..32u64 {
            for crash_at in 1..=5u64 {
                let mut m = mem();
                let cfg = quiet(seed).with_faults(FaultConfig::quiet(seed).with_crash_at(crash_at));
                let mut s = match DurableStore::create(&mut m, schema(), 1024, cfg, 0) {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                let mut crashed = false;
                for i in 0..5i64 {
                    if commit_kv(&mut m, &mut s, i, i * 10).is_err() {
                        crashed = true;
                        break;
                    }
                }
                if !crashed {
                    continue;
                }
                let (mut r, rep) =
                    DurableStore::replay(&mut m, schema(), 1024, s.crash_image(), quiet(seed), 0)
                        .unwrap();
                if rep.truncated_bytes == 0 {
                    continue;
                }
                // Partial tail found: recovery truncated it. Now the
                // acked, fault-free post-recovery commit must survive a
                // second, clean restart.
                let rc = commit_kv(&mut m, &mut r, 777, 7770).unwrap();
                let expect = r.snapshot_rows(&mut m).unwrap();
                let (r2, rep2) =
                    DurableStore::replay(&mut m, schema(), 1024, r.crash_image(), quiet(seed), 0)
                        .unwrap();
                assert_eq!(rep2.truncated_bytes, 0, "clean restart, no torn tail");
                assert_eq!(
                    rep2.watermark, rc.commit_ts,
                    "seed={seed} crash_at={crash_at}: post-recovery commit \
                     not covered by the second restart's watermark"
                );
                assert_eq!(
                    r2.snapshot_rows(&mut m).unwrap(),
                    expect,
                    "seed={seed} crash_at={crash_at}: acked post-recovery \
                     commit lost"
                );
                exercised = true;
                break 'sweep;
            }
        }
        assert!(exercised, "sweep never produced a partial torn tail");
    }

    #[test]
    fn over_capacity_commits_are_rejected_before_the_wal_append() {
        let mut m = mem();
        // Room for 3 physical versions.
        let mut s = DurableStore::create(&mut m, schema(), 3, quiet(7), 0).unwrap();
        let l0 = commit_kv(&mut m, &mut s, 1, 10).unwrap().inserted[0];
        commit_kv(&mut m, &mut s, 2, 20).unwrap();
        let appends = s.media().stats().appends;

        // Needs 2 free versions (insert + update), only 1 remains: the
        // commit is rejected with nothing appended to the log.
        let mut txn = s.begin();
        txn.insert(vec![Value::I64(3), Value::I64(30)]);
        txn.update(l0, vec![(1, Value::I64(11))]);
        let err = s.commit(&mut m, txn);
        assert!(matches!(err, Err(FabricError::Txn(_))), "{err:?}");
        assert_eq!(s.media().stats().appends, appends, "no durable trace");
        assert!(
            !s.is_poisoned(),
            "a prechecked reject leaves the store usable"
        );

        // The store still takes commits that do fit…
        let mut txn = s.begin();
        txn.update(l0, vec![(1, Value::I64(12))]);
        s.commit(&mut m, txn).unwrap();
        let rows = s.snapshot_rows(&mut m).unwrap();

        // …and the image replays cleanly: the log never saw the record
        // whose apply would have failed.
        let (r, _) =
            DurableStore::replay(&mut m, schema(), 3, s.crash_image(), quiet(7), 0).unwrap();
        assert_eq!(r.snapshot_rows(&mut m).unwrap(), rows);
    }

    #[test]
    fn bad_write_sets_are_rejected_before_the_wal_append() {
        let mut m = mem();
        let mut s = DurableStore::create(&mut m, schema(), 1024, quiet(8), 0).unwrap();
        let l = commit_kv(&mut m, &mut s, 1, 10).unwrap().inserted[0];
        let appends = s.media().stats().appends;

        // Insert arity mismatch.
        let mut txn = s.begin();
        txn.insert(vec![Value::I64(2)]);
        assert!(matches!(s.commit(&mut m, txn), Err(FabricError::Txn(_))));

        // Update column out of range.
        let mut txn = s.begin();
        txn.update(l, vec![(9, Value::I64(0))]);
        assert!(matches!(
            s.commit(&mut m, txn),
            Err(FabricError::ColumnIndexOutOfRange { .. })
        ));

        // Delete-then-update of the same row within one write set.
        let mut txn = s.begin();
        txn.delete(l);
        txn.update(l, vec![(1, Value::I64(0))]);
        assert!(matches!(s.commit(&mut m, txn), Err(FabricError::Txn(_))));

        assert_eq!(s.media().stats().appends, appends, "no durable trace");
        assert!(!s.is_poisoned());
        // The row is untouched — no partial application.
        let rows = s.snapshot_rows(&mut m).unwrap();
        assert_eq!(rows, vec![vec![Value::I64(1), Value::I64(10)]]);
    }

    #[test]
    fn cadence_checkpoint_failure_defers_but_keeps_the_receipt() {
        let mut m = mem();
        // Checkpoint after every commit; the cut strikes durable write 2 —
        // the checkpoint blob write right after the first commit's append.
        let cfg = quiet(9).with_faults(FaultConfig::quiet(9).with_crash_at(2));
        let mut s = DurableStore::create(&mut m, schema(), 1024, cfg, 1).unwrap();
        let receipt = commit_kv(&mut m, &mut s, 1, 10).expect(
            "the transaction durably committed; a failing cadence \
             checkpoint must not eat the receipt",
        );
        let failure = s.take_checkpoint_failure();
        assert!(
            matches!(failure, Some(FabricError::PowerLoss { .. })),
            "{failure:?}"
        );
        assert!(s.take_checkpoint_failure().is_none(), "taken once");
        // The device is down: the next commit fails until replay.
        assert!(commit_kv(&mut m, &mut s, 2, 20).is_err());
        // And the receipt was honest — the commit survives recovery.
        let (r, rep) =
            DurableStore::replay(&mut m, schema(), 1024, s.crash_image(), quiet(9), 1).unwrap();
        assert_eq!(rep.watermark, receipt.commit_ts);
        assert_eq!(
            r.snapshot_rows(&mut m).unwrap(),
            vec![vec![Value::I64(1), Value::I64(10)]]
        );
    }

    #[test]
    fn read_only_transactions_leave_no_durable_trace() {
        let mut m = mem();
        let mut s = DurableStore::create(&mut m, schema(), 1024, quiet(6), 0).unwrap();
        commit_kv(&mut m, &mut s, 1, 10).unwrap();
        let appends_before = s.media().stats().appends;
        let watermark = s.snapshot_ts();
        let ro = s.begin();
        let receipt = s.commit(&mut m, ro).unwrap();
        assert_eq!(receipt.commit_ts, watermark);
        assert_eq!(s.media().stats().appends, appends_before);
        assert_eq!(s.snapshot_ts(), watermark, "no timestamp burned");
        // And the replayed watermark matches the live one.
        let image = s.crash_image();
        let (_, report) = DurableStore::replay(&mut m, schema(), 1024, image, quiet(6), 0).unwrap();
        assert_eq!(report.watermark, watermark);
    }
}
