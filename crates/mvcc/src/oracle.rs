//! Timestamp allocation.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing timestamp source.
///
/// Timestamps start at 1: the value 0 is reserved as the "row still live"
/// marker in the `end_ts` field (see [`fabric_types::TsFilter`]).
#[derive(Debug)]
pub struct TimestampOracle {
    next: AtomicU64,
}

impl TimestampOracle {
    pub fn new() -> Self {
        TimestampOracle {
            next: AtomicU64::new(1),
        }
    }

    /// An oracle resuming at `next` — the recovery path's constructor.
    /// After replay the oracle must continue *above* every commit
    /// timestamp already durable, or fresh commits would collide with
    /// recovered versions; `next` below 1 is clamped (0 is the live
    /// marker and can never be allocated).
    pub fn starting_at(next: u64) -> Self {
        TimestampOracle {
            next: AtomicU64::new(next.max(1)),
        }
    }

    /// Allocate the next timestamp.
    pub fn allocate(&self) -> u64 {
        self.next.fetch_add(1, Ordering::SeqCst)
    }

    /// The most recently allocated timestamp (0 if none yet) — used as the
    /// snapshot point for new readers.
    pub fn latest(&self) -> u64 {
        self.next.load(Ordering::SeqCst) - 1
    }
}

impl Default for TimestampOracle {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_monotonically_from_one() {
        let o = TimestampOracle::new();
        assert_eq!(o.latest(), 0);
        assert_eq!(o.allocate(), 1);
        assert_eq!(o.allocate(), 2);
        assert_eq!(o.latest(), 2);
    }

    #[test]
    fn starting_at_resumes_above_the_watermark() {
        // Watermark 7 recovered: the next allocation must be 8, and the
        // snapshot a new reader gets is exactly the watermark.
        let o = TimestampOracle::starting_at(8);
        assert_eq!(o.latest(), 7);
        assert_eq!(o.allocate(), 8);
        // Clamp: resuming at 0 must not allocate the live marker.
        let o = TimestampOracle::starting_at(0);
        assert_eq!(o.latest(), 0);
        assert_eq!(o.allocate(), 1);
        // starting_at(1) is exactly a fresh oracle.
        let fresh = TimestampOracle::new();
        let resumed = TimestampOracle::starting_at(1);
        assert_eq!(fresh.latest(), resumed.latest());
        assert_eq!(fresh.allocate(), resumed.allocate());
    }

    #[test]
    fn concurrent_allocations_are_unique() {
        use std::sync::Arc;
        let o = Arc::new(TimestampOracle::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let o = o.clone();
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| o.allocate()).collect::<Vec<u64>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000);
    }
}
