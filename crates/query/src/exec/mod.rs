//! Staged plan execution over the three access paths.
//!
//! All paths share one consumption stage (expression evaluation or grouped
//! aggregation over slot tuples), so a query returns identical rows no
//! matter which path the optimizer picked — the paper's "one execution
//! engine" property (§III-B): the engine always assumes only relevant data
//! arrives.
//!
//! Execution is **staged and morsel-driven** (DESIGN.md §16). A verified
//! plan lowers to a small operator DAG ([`operators`]); its streamable
//! operators fuse into stage 0, which a [`QueryExecutor`] drives as one
//! vectorized kernel pass per morsel ([`MORSEL_ROWS`] rows for ROW/COL,
//! one delivered batch for RM), scheduling each morsel onto the
//! earliest-free simulated core (ties to the lowest core id — fully
//! deterministic). Each morsel feeds a private partial consumer; the
//! pipeline-breaking merge is stage 1, its own profiled phase on core 0,
//! folding the partials *in morsel order* so the result is bit-identical
//! for every core count — a single core simply runs the morsels back to
//! back and the merge degenerates to concatenation in scan order.
//!
//! Stage buffers come from a per-session [`Scratchpad`] ([`buffer`]):
//! morsel-sized vectors are recycled across stages and queries, with
//! epoch-stamped tickets making aliasing a panic instead of a wrong
//! answer. The merged stage output of a clean run is memoized in a
//! signature-keyed [`OpCache`] ([`opcache`]); a session re-running the
//! same plan shape against the same table gets the memoized rows without
//! touching the hierarchy again.

pub mod buffer;
mod executor;
pub mod opcache;
pub(crate) mod operators;

pub use buffer::{BufferKind, BufferRef, Scratchpad};
pub use executor::QueryExecutor;
pub(crate) use opcache::CacheSlot;
pub use opcache::OpCache;

use crate::analyze::{analyze, VerifiedQuery};
use crate::bind::BoundQuery;
use crate::catalog::{Catalog, TableEntry};
use crate::cost::{choose_path_parallel, split_path_cost, AccessPath, PathCost};
use fabric_sim::{
    Category, CircuitBreaker, FaultConfig, FaultPlan, MemStats, MemoryHierarchy, OpStats,
    RecoveryPolicy,
};
use fabric_types::{FabricError, Result, Value};
use relmem::{RmConfig, RmStats};

use operators::{merge_partials, Consumer};

/// Rows per ROW/COL morsel: large enough to amortize per-morsel operator
/// setup and keep scans sequential, small enough to load-balance across
/// the simulated cores.
pub const MORSEL_ROWS: usize = 4096;

/// One measured execution phase — a plan node's actuals, captured whether
/// or not a trace recorder is attached (the bookkeeping is host-side and
/// never advances simulated time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Span name, matching the trace event (`query::scan::rm`, …).
    pub name: &'static str,
    /// Simulated cycles the phase took.
    pub cycles: u64,
    /// Payload bytes read through the hierarchy during the phase.
    pub bytes_read: u64,
    /// Cycles the CPU spent stalled on memory during the phase.
    pub stall_cycles: u64,
    /// Whether the phase ended in an error (a faulted RM attempt stays in
    /// the profile of the degraded query that absorbed it).
    pub failed: bool,
}

/// One simulated core's share of a query: where its cycles went and how
/// much data it pulled through the hierarchy. The books balance by
/// construction — `busy_cycles + idle_cycles` equals the query's
/// wall-clock cycles on every core, and `busy_cycles` is exactly
/// `cpu + stall + mem_lat` (the hierarchy attributes every clock advance
/// to one of the three).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreAttribution {
    pub core: usize,
    /// Cycles this core spent working: `cpu + stall + mem_lat`.
    pub busy_cycles: u64,
    pub cpu_cycles: u64,
    pub stall_cycles: u64,
    pub mem_lat_cycles: u64,
    /// L1-service share of `mem_lat_cycles` (with `lat_l2_cycles` it
    /// partitions `mem_lat_cycles` exactly).
    pub lat_l1_cycles: u64,
    /// L2-service share of `mem_lat_cycles`.
    pub lat_l2_cycles: u64,
    /// Bandwidth-ledger share of `stall_cycles` (the four stall buckets
    /// partition `stall_cycles` exactly — see `MemStats`).
    pub stall_bw_cycles: u64,
    /// DRAM-data-wait share of `stall_cycles`.
    pub stall_dram_cycles: u64,
    /// Producer-device-wait share of `stall_cycles` (RM beat, SSD, bus).
    pub stall_device_cycles: u64,
    /// Fault-retry-backoff share of `stall_cycles`.
    pub stall_retry_cycles: u64,
    /// Payload bytes this core read through the hierarchy.
    pub bytes_read: u64,
    /// Cycles this core sat at barriers waiting for slower peers (or for
    /// the merge running on core 0).
    pub idle_cycles: u64,
}

/// Per-operator estimated and actual attribution for one DAG node of an
/// executed query — the rows of the EXPLAIN ANALYZE operator tree and of
/// the query log's `ops` array.
///
/// Estimates are the node's share of the path estimate
/// ([`split_path_cost`]); the shares sum to the path total bit-exactly.
/// Actuals apportion the measured scan phase: each stage-0 node gets
/// cycles proportional to its estimate share (the scan node absorbing
/// the integer remainder so the stage-0 cycles also sum exactly), the
/// scan node owns the phase's bytes, and the merge node carries its own
/// phase's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct OpReport {
    /// Operator name as lowered (`scan_row`, `filter`, `aggregate`, ...).
    pub op: &'static str,
    /// Estimated nanoseconds attributed to this operator.
    pub est_ns: f64,
    /// Estimated bytes attributed to this operator.
    pub est_bytes: f64,
    /// Measured simulated cycles attributed to this operator.
    pub actual_cycles: u64,
    /// Measured bytes read attributed to this operator.
    pub actual_bytes: u64,
    /// Rows entering the operator.
    pub rows_in: u64,
    /// Rows leaving the operator.
    pub rows_out: u64,
    /// Operator body invocations (morsels, or merge folds).
    pub invocations: u64,
}

/// Who issued the query and what the engine had been through when it
/// ran — recorded into the query log alongside the execution itself.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RecordMeta {
    /// Session id (0 for engine-direct entry points).
    pub session: u64,
    /// Tables the engine has recovered (WAL replay) so far.
    pub recovered_tables: u64,
}

/// How the run interacted with the operator cache, for provenance in the
/// query log and the opcache metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CacheOutcome {
    /// The entry point bypassed the cache (benches, EXPLAIN ANALYZE).
    Bypass,
    /// Probed and missed (and possibly filled).
    Miss,
    /// Replayed the memoized stage output.
    Hit,
}

/// The result of a query: rows plus how they were obtained.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    pub rows: Vec<Vec<Value>>,
    pub path: AccessPath,
    /// Simulated nanoseconds spent executing (excludes parse/bind).
    pub ns: f64,
    /// The optimizer's estimates (for EXPLAIN-style output).
    pub cost: PathCost,
    /// RM device statistics, when the RM path ran (even if it then
    /// degraded — the failed attempt's injected-fault counters are here).
    pub rm_stats: Option<RmStats>,
    /// `Some(original_path)` when the executor transparently re-planned
    /// onto `path` after the original faulted past its retry budget.
    pub degraded_from: Option<AccessPath>,
    /// Per-phase actuals (scan, merge, sort, failed attempts) in execution
    /// order — the plan-node breakdown `EXPLAIN ANALYZE` renders.
    pub profile: Vec<PhaseProfile>,
    /// Per-core cycle/byte attribution for this query, one entry per
    /// simulated core (a single entry on a 1-core engine).
    pub cores: Vec<CoreAttribution>,
    /// Top-down cycle accounting for the query window (DESIGN.md §12):
    /// every core's elapsed cycles classified into retired / memory-bound
    /// / stall buckets. Verified (`buckets sum == elapsed`) before the
    /// output is returned, and exported into the metrics registry as
    /// `query.core<i>.td.*`.
    pub topdown: fabric_sim::TopDown,
    /// Per-operator estimate/actual attribution for the path that ran
    /// (empty on op-cache hits — no operator executed). Per-op estimates
    /// sum bit-exactly to `cost.ns(path)`.
    pub ops: Vec<OpReport>,
    /// True when the answer was replayed from the operator cache.
    pub cache_hit: bool,
}

/// Fault-handling state threaded through resilient execution across
/// queries: the seeded plan, the recovery budgets, and the RM engine's
/// health. Hold one per simulated "machine" so the circuit breaker sees
/// consecutive failures across queries, not just within one.
pub struct FaultContext {
    /// The seeded fault plan every RM delivery draws from.
    pub plan: FaultPlan,
    /// Retry/backoff/breaker budgets.
    pub policy: RecoveryPolicy,
    rm_health: CircuitBreaker,
    /// Queries that degraded onto a software path after an RM fault.
    pub fallbacks: u64,
    /// Queries that skipped the RM path because its breaker was open.
    pub breaker_skips: u64,
}

impl FaultContext {
    pub fn new(cfg: FaultConfig, policy: RecoveryPolicy) -> Self {
        FaultContext {
            plan: FaultPlan::new(cfg),
            rm_health: CircuitBreaker::new(&policy),
            policy,
            fallbacks: 0,
            breaker_skips: 0,
        }
    }

    /// A context whose plan injects nothing (useful as a baseline).
    pub fn quiet() -> Self {
        FaultContext::new(FaultConfig::quiet(0), RecoveryPolicy::default())
    }

    /// Health of the RM engine as seen by this context.
    pub fn rm_health(&self) -> &CircuitBreaker {
        &self.rm_health
    }
}

/// How the shared pipeline reacts to injected faults: `Plain` lets RM
/// delivery errors propagate to the caller; `Resilient` retries every
/// delivery under the context's policy and transparently degrades onto a
/// software path once the budget is exhausted (or skips the device when
/// its breaker is open). Resilience is a *policy wrapper* around one
/// pipeline — both variants run exactly the same stage-0/merge/post
/// stages.
pub(crate) enum Resilience<'f> {
    Plain,
    Resilient(&'f mut FaultContext),
}

#[cfg(test)]
pub(crate) fn execute_impl(
    mem: &mut MemoryHierarchy,
    catalog: &Catalog,
    bound: &BoundQuery,
) -> Result<QueryOutput> {
    let entry = catalog.get(&bound.table)?;
    let verified = analyze(entry, bound, &RmConfig::prototype())?;
    let (path, cost) = choose_path_parallel(
        mem.config(),
        &RmConfig::prototype(),
        entry,
        bound,
        mem.num_cores(),
    )?;
    run_verified(
        mem,
        entry,
        &verified,
        path,
        cost,
        Resilience::Plain,
        CacheSlot::None,
        &mut Scratchpad::new(),
        RecordMeta::default(),
    )
}

pub(crate) fn execute_on_impl(
    mem: &mut MemoryHierarchy,
    catalog: &Catalog,
    bound: &BoundQuery,
    path: AccessPath,
) -> Result<QueryOutput> {
    let entry = catalog.get(&bound.table)?;
    let verified = analyze(entry, bound, &RmConfig::prototype())?;
    let (_, cost) = choose_path_parallel(
        mem.config(),
        &RmConfig::prototype(),
        entry,
        bound,
        mem.num_cores(),
    )?;
    run_verified(
        mem,
        entry,
        &verified,
        path,
        cost,
        Resilience::Plain,
        CacheSlot::None,
        &mut Scratchpad::new(),
        RecordMeta::default(),
    )
}

#[cfg(test)]
pub(crate) fn execute_resilient_impl(
    mem: &mut MemoryHierarchy,
    catalog: &Catalog,
    bound: &BoundQuery,
    ctx: &mut FaultContext,
) -> Result<QueryOutput> {
    let entry = catalog.get(&bound.table)?;
    let verified = analyze(entry, bound, &RmConfig::prototype())?;
    let (path, cost) = choose_path_parallel(
        mem.config(),
        &RmConfig::prototype(),
        entry,
        bound,
        mem.num_cores(),
    )?;
    run_verified(
        mem,
        entry,
        &verified,
        path,
        cost,
        Resilience::Resilient(ctx),
        CacheSlot::None,
        &mut Scratchpad::new(),
        RecordMeta::default(),
    )
}

/// The trace/profile span name of a path's scan phase.
fn scan_span(path: AccessPath) -> &'static str {
    match path {
        AccessPath::Row => "query::scan::row",
        AccessPath::Col => "query::scan::col",
        AccessPath::Rm => "query::scan::rm",
    }
}

/// Run `f` as a named execution phase: emit a balanced trace span (with
/// cycle/byte/stall attribution as end args) and append the measured
/// actuals to `profile`. The phase is recorded even when `f` errors — a
/// failed RM attempt is part of the degraded query's story.
fn profiled<R>(
    mem: &mut MemoryHierarchy,
    name: &'static str,
    profile: &mut Vec<PhaseProfile>,
    f: impl FnOnce(&mut MemoryHierarchy) -> Result<R>,
) -> Result<R> {
    let before = mem.stats();
    let t = mem.now();
    mem.trace_begin(name, Category::Query);
    let res = f(mem);
    let d = mem.stats().delta_since(&before);
    let cycles = mem.now() - t;
    mem.trace_end(
        name,
        Category::Query,
        &[
            ("cycles", cycles),
            ("bytes_read", d.bytes_read),
            ("stall_cycles", d.stall_cycles),
            ("failed", u64::from(res.is_err())),
        ],
    );
    profile.push(PhaseProfile {
        name,
        cycles,
        bytes_read: d.bytes_read,
        stall_cycles: d.stall_cycles,
        failed: res.is_err(),
    });
    res
}

/// The one pipeline every entry point funnels into.
///
/// Probes the operator cache first: a hit replays the memoized
/// stage-0+merge output (pure CPU probe cost, zero hierarchy traffic) and
/// goes straight to the post-processing tail. A miss runs stage 0 on the
/// [`QueryExecutor`] for the chosen path (under the requested resilience
/// policy), merges the partials as its own profiled `query::stage::merge`
/// phase, memoizes clean results, and finishes through the shared tail.
/// Opens/closes the `query::exec` span and captures per-core attribution
/// across the whole run.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_verified(
    mem: &mut MemoryHierarchy,
    entry: &TableEntry,
    verified: &VerifiedQuery<'_>,
    path: AccessPath,
    cost: PathCost,
    resilience: Resilience<'_>,
    mut cache: CacheSlot<'_>,
    scratch: &mut Scratchpad,
    meta: RecordMeta,
) -> Result<QueryOutput> {
    // New query, new buffer epoch: tickets minted by the previous query
    // are now invalid (see `buffer`).
    scratch.begin_query();
    // The plan signature recorded in the query log: the cache key when
    // the run is keyed, else the same signature computed locally (bypass
    // entry points still get stable provenance).
    let sig = match &cache {
        CacheSlot::Keyed(_, key) => *key,
        CacheSlot::None => opcache::keyed(
            opcache::plan_signature(
                verified.bound(),
                entry.rows.len(),
                &format!("{:?}", verified.geometry()),
            ),
            path,
        ),
    };
    // Align the cores so the attribution window has one common origin.
    let t0 = mem.fork_clocks();
    // Arm the flight recorder: a mid-query postmortem reports its metrics
    // delta relative to this point.
    mem.flight_arm();
    let before: Vec<MemStats> = (0..mem.num_cores()).map(|i| mem.core_stats(i)).collect();
    mem.trace_begin("query::exec", Category::Query);
    let mut profile = Vec::new();

    if let Some((rows, cached_path, cached_rm)) = cache.probe() {
        // Operator-cache hit: the memoized stage output stands in for
        // stage 0 and the merge. The only cost is the probe plus the
        // copy-out — pure CPU on core 0, zero hierarchy traffic.
        mem.set_active_core(0);
        let n = rows.len() as u64;
        let copied = profiled(mem, "query::opcache::hit", &mut profile, |m| {
            let costs = m.costs();
            m.cpu(costs.hash_op + costs.value_op * n);
            Ok(())
        });
        debug_assert!(copied.is_ok());
        mem.metrics_mut().counter_add("query.opcache.hits", 1);
        return finish_output(
            mem,
            verified,
            rows,
            cached_path,
            cost,
            t0,
            cached_rm,
            None,
            profile,
            &before,
            RecordCtx {
                meta,
                sig,
                outcome: CacheOutcome::Hit,
                ops: Vec::new(),
            },
        );
    }
    let outcome = match &cache {
        CacheSlot::Keyed(..) => CacheOutcome::Miss,
        CacheSlot::None => CacheOutcome::Bypass,
    };

    let scanned = run_scan(
        mem,
        entry,
        verified,
        path,
        &cost,
        resilience,
        &mut profile,
        scratch,
    );
    let (partials, actuals, ran_path, rm_stats, degraded_from) = match scanned {
        Ok(v) => v,
        Err(e) => {
            mem.join_clocks();
            mem.trace_end("query::exec", Category::Query, &[("failed", 1)]);
            return Err(e);
        }
    };

    // Stage 1: the pipeline-breaking merge, profiled as its own phase on
    // core 0. Its per-operator actuals are recorded here — the driver owns
    // this stage, not the stage-0 executor.
    let bound = verified.bound();
    let merge_stats = OpStats {
        invocations: partials.len() as u64,
        rows_in: partials.iter().map(|p| p.partial_len() as u64).sum(),
        rows_out: 0,
    };
    let merged = profiled(mem, "query::stage::merge", &mut profile, |m| {
        merge_partials(m, bound, partials)
    });
    let rows = match merged {
        Ok(r) => r,
        Err(e) => {
            mem.join_clocks();
            mem.trace_end("query::exec", Category::Query, &[("failed", 1)]);
            return Err(e);
        }
    };
    let merge_full = OpStats {
        rows_out: rows.len() as u64,
        ..merge_stats
    };
    merge_full.record_into(mem.metrics_mut(), "query.op", "merge");

    // Attribute estimates and measured cycles/bytes to the DAG nodes that
    // actually ran (the fallback executor's nodes when the run degraded).
    let ops = match build_op_reports(
        mem,
        entry,
        verified,
        ran_path,
        &cost,
        &actuals,
        &profile,
        &merge_full,
    ) {
        Ok(v) => v,
        Err(e) => {
            mem.join_clocks();
            mem.trace_end("query::exec", Category::Query, &[("failed", 1)]);
            return Err(e);
        }
    };

    // Memoize the pre-sort/pre-limit stage output — clean runs only: a
    // degraded answer or a faulted RM attempt must be re-earned every
    // time so fault-path counters and breaker state stay truthful.
    if let CacheSlot::Keyed(opcache, key) = cache {
        mem.metrics_mut().counter_add("query.opcache.misses", 1);
        let clean =
            degraded_from.is_none() && rm_stats.as_ref().map_or(true, |s| s.injected_faults == 0);
        if clean {
            let evicted_before = opcache.evictions();
            opcache.insert(key, rows.clone(), ran_path, rm_stats.clone());
            let metrics = mem.metrics_mut();
            metrics.counter_add("query.opcache.insertions", 1);
            metrics.counter_add(
                "query.opcache.evictions",
                opcache.evictions() - evicted_before,
            );
        }
        // Occupancy after this run, visible next to the hit/miss counters.
        let metrics = mem.metrics_mut();
        metrics.gauge_set("query.opcache.entries", opcache.len() as f64);
        metrics.gauge_set("query.opcache.bytes", opcache.bytes() as f64);
    }

    finish_output(
        mem,
        verified,
        rows,
        ran_path,
        cost,
        t0,
        rm_stats,
        degraded_from,
        profile,
        &before,
        RecordCtx {
            meta,
            sig,
            outcome,
            ops,
        },
    )
}

/// Everything `finish_output` needs to record the run into the query log
/// and the calibration ledger, beyond the execution results themselves.
pub(crate) struct RecordCtx {
    pub meta: RecordMeta,
    /// Plan signature (see [`run_verified`]).
    pub sig: u128,
    pub outcome: CacheOutcome,
    /// Per-operator attribution (empty on cache hits).
    pub ops: Vec<OpReport>,
}

/// Build the per-operator reports for the path that ran: estimates from
/// [`split_path_cost`], actuals apportioned from the measured scan and
/// merge phases (see [`OpReport`]). Uses the *last* non-failed scan phase
/// of `ran_path` so a degraded run attributes the fallback scan, not the
/// faulted RM attempt.
#[allow(clippy::too_many_arguments)]
fn build_op_reports(
    mem: &MemoryHierarchy,
    entry: &TableEntry,
    verified: &VerifiedQuery<'_>,
    ran_path: AccessPath,
    cost: &PathCost,
    actuals: &[(&'static str, OpStats)],
    profile: &[PhaseProfile],
    merge: &OpStats,
) -> Result<Vec<OpReport>> {
    let ests = split_path_cost(
        mem.config(),
        &RmConfig::prototype(),
        entry,
        verified.bound(),
        ran_path,
        cost,
    )?;
    let scan_phase = profile
        .iter()
        .rev()
        .find(|p| p.name == scan_span(ran_path) && !p.failed);
    let merge_phase = profile
        .iter()
        .rev()
        .find(|p| p.name == "query::stage::merge" && !p.failed);
    let phase_cycles = scan_phase.map_or(0, |p| p.cycles);
    let phase_bytes = scan_phase.map_or(0, |p| p.bytes_read);

    // Apportion the scan phase's cycles by estimate share; non-scan nodes
    // floor, the scan node absorbs the integer remainder so the stage-0
    // actuals sum to the measured phase exactly.
    let stage0: Vec<&crate::cost::OpEstimate> = ests.iter().filter(|e| e.op != "merge").collect();
    let wsum: f64 = stage0.iter().map(|e| e.ns).sum();
    let mut attributed = 0u64;
    let mut cycles_for: Vec<(&'static str, u64)> = Vec::with_capacity(stage0.len());
    for e in stage0.iter().skip(1) {
        let share = if wsum > 0.0 {
            (phase_cycles as f64 * (e.ns / wsum)) as u64
        } else {
            0
        };
        attributed += share;
        cycles_for.push((e.op, share));
    }
    let stats_for = |op: &str| {
        actuals
            .iter()
            .find(|(n, _)| *n == op)
            .map_or(OpStats::default(), |(_, s)| *s)
    };
    let mut ops = Vec::with_capacity(ests.len());
    for e in &ests {
        let (actual_cycles, actual_bytes, stats) = if e.op == "merge" {
            (
                merge_phase.map_or(0, |p| p.cycles),
                merge_phase.map_or(0, |p| p.bytes_read),
                *merge,
            )
        } else if stage0.first().is_some_and(|f| std::ptr::eq(e, *f)) {
            (
                phase_cycles.saturating_sub(attributed),
                phase_bytes,
                stats_for(e.op),
            )
        } else {
            let c = cycles_for
                .iter()
                .find(|(n, _)| *n == e.op)
                .map_or(0, |(_, c)| *c);
            (c, 0, stats_for(e.op))
        };
        ops.push(OpReport {
            op: e.op,
            est_ns: e.ns,
            est_bytes: e.bytes,
            actual_cycles,
            actual_bytes,
            rows_in: stats.rows_in,
            rows_out: stats.rows_out,
            invocations: stats.invocations,
        });
    }
    Ok(ops)
}

/// Stage 0 of the pipeline: run the chosen path's fused morsel kernels on
/// a [`QueryExecutor`], applying the resilience policy around RM
/// delivery. Returns the per-morsel partials, the path that actually
/// produced them, device stats when the RM path ran, and the original
/// path when the query degraded.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn run_scan<'v>(
    mem: &mut MemoryHierarchy,
    entry: &TableEntry,
    verified: &'v VerifiedQuery<'v>,
    path: AccessPath,
    cost: &PathCost,
    resilience: Resilience<'_>,
    profile: &mut Vec<PhaseProfile>,
    scratch: &mut Scratchpad,
) -> Result<(
    Vec<Consumer<'v>>,
    Vec<(&'static str, OpStats)>,
    AccessPath,
    Option<RmStats>,
    Option<AccessPath>,
)> {
    let software = |m: &mut MemoryHierarchy,
                    p: &mut Vec<PhaseProfile>,
                    s: &mut Scratchpad,
                    fb: AccessPath|
     -> Result<(Vec<Consumer<'v>>, Vec<(&'static str, OpStats)>)> {
        let mut ex = QueryExecutor::new(verified, fb);
        let res = profiled(m, scan_span(fb), p, |m| ex.run_stage0(m, entry, s));
        ex.record_metrics(m.metrics_mut());
        res.map(|partials| (partials, ex.op_actuals()))
    };
    match (path, resilience) {
        (AccessPath::Row | AccessPath::Col, _) => software(mem, profile, scratch, path)
            .map(|(partials, actuals)| (partials, actuals, path, None, None)),
        (AccessPath::Rm, Resilience::Plain) => {
            let mut ex = QueryExecutor::new(verified, AccessPath::Rm);
            let res = profiled(mem, scan_span(path), profile, |m| {
                ex.run_stage0_rm(m, scratch)
            });
            ex.record_metrics(mem.metrics_mut());
            let actuals = ex.op_actuals();
            res.map(|(partials, stats)| (partials, actuals, path, Some(stats), None))
        }
        (AccessPath::Rm, Resilience::Resilient(ctx)) => {
            if !ctx.rm_health.allow() {
                // Breaker open: don't even try the device; fail fast onto
                // software.
                ctx.breaker_skips += 1;
                mem.trace_instant("query.breaker_skip", Category::Fault, &[]);
                // The skip must be visible in every MetricsSnapshot, not
                // only in the context counters (it was silently dropped
                // before this landed in the registry).
                mem.metrics_mut().counter_add("query.breaker_skips", 1);
                mem.flight_dump("breaker-open");
                let fb = fallback_path(cost);
                let (partials, actuals) = software(mem, profile, scratch, fb)?;
                return Ok((partials, actuals, fb, None, Some(AccessPath::Rm)));
            }

            // The resilient RM stage always reports device stats, so it
            // cannot run under `profiled` directly — measure by hand.
            let before = mem.stats();
            let t_rm = mem.now();
            mem.trace_begin(scan_span(AccessPath::Rm), Category::Query);
            let mut ex = QueryExecutor::new(verified, AccessPath::Rm);
            let (res, stats) = ex.run_stage0_rm_resilient(mem, scratch, ctx);
            ex.record_metrics(mem.metrics_mut());
            let d = mem.stats().delta_since(&before);
            mem.trace_end(
                scan_span(AccessPath::Rm),
                Category::Query,
                &[
                    ("cycles", mem.now() - t_rm),
                    ("bytes_read", d.bytes_read),
                    ("stall_cycles", d.stall_cycles),
                    ("failed", u64::from(res.is_err())),
                ],
            );
            profile.push(PhaseProfile {
                name: scan_span(AccessPath::Rm),
                cycles: mem.now() - t_rm,
                bytes_read: d.bytes_read,
                stall_cycles: d.stall_cycles,
                failed: res.is_err(),
            });

            match res {
                Ok(partials) => {
                    ctx.rm_health.record_success();
                    Ok((partials, ex.op_actuals(), AccessPath::Rm, Some(stats), None))
                }
                Err(e) if degradable(&e) => {
                    // The device is misbehaving past its retry budget:
                    // re-plan onto software. The wasted RM time is real
                    // and stays inside the query's window.
                    ctx.rm_health.record_failure();
                    ctx.fallbacks += 1;
                    let fb = fallback_path(cost);
                    mem.trace_instant(
                        "query.degraded",
                        Category::Fault,
                        &[("to_col", u64::from(fb == AccessPath::Col))],
                    );
                    mem.flight_dump("degraded");
                    let (partials, actuals) = software(mem, profile, scratch, fb)?;
                    Ok((partials, actuals, fb, Some(stats), Some(AccessPath::Rm)))
                }
                Err(e) => Err(e),
            }
        }
    }
}

/// Short stable tag for a verified geometry, used in calibration ledger
/// keys (the full Debug form is too long for a metric name): FNV-1a over
/// the Debug rendering, folded to 8 hex digits.
fn geometry_tag(geometry: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in geometry.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    format!("{:08x}", (h as u32) ^ ((h >> 32) as u32))
}

/// Relative error of an observation against its estimate, as a fraction
/// (0.0 when there was no estimate to be wrong about).
fn rel_err(est: f64, actual: f64) -> f64 {
    if est > 0.0 {
        (actual - est).abs() / est
    } else {
        0.0
    }
}

/// Shared tail of every execution: ORDER BY / LIMIT post-processing,
/// metrics accounting, query-log / calibration recording, and output
/// assembly. `t0` is when the *first* attempt started, so a degraded
/// run's `ns` includes the time burnt on the failed RM path. Closes the
/// `query::exec` span its caller opened.
#[allow(clippy::too_many_arguments)]
fn finish_output(
    mem: &mut MemoryHierarchy,
    verified: &VerifiedQuery<'_>,
    mut rows: Vec<Vec<Value>>,
    path: AccessPath,
    cost: PathCost,
    t0: fabric_sim::Cycles,
    rm_stats: Option<RmStats>,
    degraded_from: Option<AccessPath>,
    mut profile: Vec<PhaseProfile>,
    before: &[MemStats],
    ctx: RecordCtx,
) -> Result<QueryOutput> {
    let bound = verified.bound();
    if !bound.order_by.is_empty() {
        let sorted = profiled(mem, "query::post::sort", &mut profile, |m| {
            sort_rows(m, &mut rows, &bound.order_by)
        });
        if let Err(e) = sorted {
            mem.join_clocks();
            mem.trace_end("query::exec", Category::Query, &[("failed", 1)]);
            return Err(e);
        }
    }
    if let Some(limit) = bound.limit {
        rows.truncate(limit);
    }
    // Close the attribution window: align every core to the frontier, then
    // the per-core busy deltas plus barrier idle add up to `total` each.
    let t_end = mem.join_clocks();
    let total = t_end - t0;
    let mut cores: Vec<CoreAttribution> = Vec::with_capacity(before.len());
    let mut td_cores: Vec<fabric_sim::TopDownCore> = Vec::with_capacity(before.len());
    for (i, b) in before.iter().enumerate() {
        let d = mem.core_stats(i).delta_since(b);
        let busy = d.busy_cycles();
        let idle = total.saturating_sub(busy);
        td_cores.push(d.topdown(i, idle));
        cores.push(CoreAttribution {
            core: i,
            busy_cycles: busy,
            cpu_cycles: d.cpu_cycles,
            stall_cycles: d.stall_cycles,
            mem_lat_cycles: d.mem_lat_cycles,
            lat_l1_cycles: d.lat_l1_cycles,
            lat_l2_cycles: d.lat_l2_cycles,
            stall_bw_cycles: d.stall_bw_cycles,
            stall_dram_cycles: d.stall_dram_cycles,
            stall_device_cycles: d.stall_device_cycles,
            stall_retry_cycles: d.stall_retry_cycles,
            bytes_read: d.bytes_read,
            idle_cycles: idle,
        });
    }
    let topdown = fabric_sim::TopDown { cores: td_cores };
    // Hard invariant (DESIGN.md §12): the top-down buckets partition each
    // core's elapsed cycles exactly. A violation means a charge site in
    // the hierarchy leaked cycles past the sub-bucket accounting.
    if let Err(why) = topdown.verify() {
        mem.trace_end("query::exec", Category::Query, &[("failed", 1)]);
        return Err(FabricError::Internal(format!(
            "top-down accounting does not reconcile: {why}"
        )));
    }
    mem.trace_end(
        "query::exec",
        Category::Query,
        &[
            ("rows", rows.len() as u64),
            ("cycles", total),
            ("degraded", u64::from(degraded_from.is_some())),
        ],
    );
    let path_key = match path {
        AccessPath::Row => "query.path.row",
        AccessPath::Col => "query.path.col",
        AccessPath::Rm => "query.path.rm",
    };
    let metrics = mem.metrics_mut();
    metrics.counter_add("query.executions", 1);
    metrics.counter_add(path_key, 1);
    metrics.counter_add("query.rows_out", rows.len() as u64);
    if degraded_from.is_some() {
        metrics.counter_add("query.degraded", 1);
    }
    metrics.observe("query.exec_cycles", total);
    for a in &cores {
        metrics.counter_add(&format!("query.core{}.busy_cycles", a.core), a.busy_cycles);
        metrics.counter_add(&format!("query.core{}.idle_cycles", a.core), a.idle_cycles);
        metrics.counter_add(&format!("query.core{}.bytes_read", a.core), a.bytes_read);
    }
    topdown.record_into(metrics, "query");
    if let Some(rm) = &rm_stats {
        rm.record_into(metrics, "query.rm");
    }

    // --- Query log + calibration ledger (host-side: no simulated time) ---
    let cache_hit = ctx.outcome == CacheOutcome::Hit;
    let path_str = match path {
        AccessPath::Row => "row",
        AccessPath::Col => "col",
        AccessPath::Rm => "rm",
    };
    let est_ns = cost.ns(path).unwrap_or(0.0);
    let est_bytes = cost.bytes(path).unwrap_or(0.0);
    let actual_ns = mem.ns_since(t0);
    let actual_bytes: u64 = cores.iter().map(|a| a.bytes_read).sum();
    let faults_injected = rm_stats.as_ref().map_or(0, |s| s.injected_faults);
    let mut td_sum = fabric_sim::TopDownSummary::default();
    for c in &topdown.cores {
        td_sum.retired += c.retired;
        td_sum.mem += c.memory_bound();
        // `TopDownCore::stall()` folds idle in; the summary keeps idle as
        // its own bucket, so take the stall sub-buckets individually.
        td_sum.stall += c.bw_wait + c.fault_retry;
        td_sum.idle += c.idle;
        td_sum.elapsed += c.elapsed;
    }
    let record = fabric_sim::QueryRecord {
        seq: 0, // assigned by the log on push
        plan_sig: ctx.sig,
        class: bound.class().to_string(),
        session: ctx.meta.session,
        path: path_str.to_string(),
        est_ns,
        actual_cycles: total,
        est_bytes,
        actual_bytes,
        rows_out: rows.len() as u64,
        cache_hit,
        degraded_from: degraded_from.map(|p| format!("{p:?}")),
        recovered_tables: ctx.meta.recovered_tables,
        faults_injected,
        ops: ctx
            .ops
            .iter()
            .map(|o| fabric_sim::OpRecord {
                op: o.op.to_string(),
                est_ns: o.est_ns,
                est_bytes: o.est_bytes,
                actual_cycles: o.actual_cycles,
                actual_bytes: o.actual_bytes,
                rows_in: o.rows_in,
                rows_out: o.rows_out,
                invocations: o.invocations,
            })
            .collect(),
        topdown: td_sum,
    };
    mem.querylog_mut().push(record);
    mem.metrics_mut().counter_add("querylog.records", 1);

    // Calibrate the cost model on clean cold runs only: hits measure the
    // cache, not the path; degraded/faulted runs measure the fault story.
    if !cache_hit && degraded_from.is_none() && faults_injected == 0 {
        let key = format!(
            "{}/{}/{}",
            bound.table,
            geometry_tag(&format!("{:?}", verified.geometry())),
            path_str
        );
        let e = mem.calib_mut().observe(
            &key,
            rel_err(est_ns, actual_ns),
            rel_err(est_bytes, actual_bytes as f64),
        );
        let metrics = mem.metrics_mut();
        metrics.counter_add("calib.observations", 1);
        metrics.gauge_set(&format!("calib.{key}.runs"), e.runs as f64);
        metrics.gauge_set(&format!("calib.{key}.mean_rel_err_ns"), e.mean_rel_err_ns);
        metrics.gauge_set(&format!("calib.{key}.ewma_rel_err_ns"), e.ewma_rel_err_ns);
        metrics.gauge_set(
            &format!("calib.{key}.mean_rel_err_bytes"),
            e.mean_rel_err_bytes,
        );
        metrics.gauge_set(
            &format!("calib.{key}.ewma_rel_err_bytes"),
            e.ewma_rel_err_bytes,
        );
    }

    Ok(QueryOutput {
        rows,
        path,
        ns: actual_ns,
        cost,
        rm_stats,
        degraded_from,
        profile,
        cores,
        topdown,
        ops: ctx.ops,
        cache_hit,
    })
}

/// Is this an RM delivery fault the executor may transparently absorb by
/// re-planning? Anything else (plan errors, type errors) must propagate.
fn degradable(e: &FabricError) -> bool {
    matches!(
        e,
        FabricError::DeviceTimeout { .. } | FabricError::CorruptBatch { .. }
    )
}

/// The software path a faulted RM query re-plans onto: COL when a
/// columnar copy exists (it was priced, so `col_ns` is `Some`), else ROW.
fn fallback_path(cost: &PathCost) -> AccessPath {
    if cost.col_ns.is_some() {
        AccessPath::Col
    } else {
        AccessPath::Row
    }
}

/// Sort the result rows on the bound `(position, desc)` keys, charging an
/// n·log n comparison cost.
fn sort_rows(
    mem: &mut MemoryHierarchy,
    rows: &mut [Vec<Value>],
    keys: &[(usize, bool)],
) -> Result<()> {
    let costs = mem.costs();
    let n = rows.len() as u64;
    if n > 1 {
        let comparisons = n * (64 - n.leading_zeros() as u64);
        mem.cpu(comparisons * (costs.value_op * keys.len() as u64 + costs.branch_miss / 2));
    }
    let mut err = None;
    rows.sort_by(|a, b| {
        for &(pos, desc) in keys {
            match a[pos].compare(&b[pos]) {
                Ok(ord) => {
                    let ord = if desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                Err(e) => {
                    err.get_or_insert(e);
                    return std::cmp::Ordering::Equal;
                }
            }
        }
        std::cmp::Ordering::Equal
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::bind;
    use crate::cost::choose_path;
    use crate::parser::parse;
    use colstore::ColTable;
    use fabric_sim::SimConfig;
    use fabric_types::{ColumnType, Schema};
    use rowstore::RowTable;

    /// 200 rows: id i64, grp char(1) A/B, qty f64 = id, d date = id.
    fn setup() -> (MemoryHierarchy, Catalog) {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let schema = Schema::from_pairs(&[
            ("id", ColumnType::I64),
            ("grp", ColumnType::FixedStr(1)),
            ("qty", ColumnType::F64),
            ("d", ColumnType::Date),
        ]);
        let mut rt = RowTable::create(&mut mem, schema.clone(), 256).unwrap();
        let mut ct = ColTable::create(&mut mem, schema, 256).unwrap();
        for i in 0..200i64 {
            let row = vec![
                Value::I64(i),
                Value::Str(if i % 2 == 0 { "A" } else { "B" }.into()),
                Value::F64(i as f64),
                Value::Date(i as u32),
            ];
            rt.load(&mut mem, &row).unwrap();
            ct.load(&mut mem, &row).unwrap();
        }
        let mut c = Catalog::new();
        c.register("t", rt, ct);
        (mem, c)
    }

    fn all_paths(mem: &mut MemoryHierarchy, c: &Catalog, sql: &str) -> Vec<QueryOutput> {
        let bound = bind(c, &parse(sql).unwrap()).unwrap();
        [AccessPath::Row, AccessPath::Col, AccessPath::Rm]
            .into_iter()
            .map(|p| execute_on_impl(mem, c, &bound, p).unwrap())
            .collect()
    }

    #[test]
    fn projection_identical_on_all_paths() {
        let (mut mem, c) = setup();
        let outs = all_paths(&mut mem, &c, "SELECT id, qty * 2 FROM t WHERE id < 5");
        for o in &outs {
            assert_eq!(o.rows.len(), 5);
            assert_eq!(o.rows[3], vec![Value::I64(3), Value::F64(6.0)]);
        }
        assert_eq!(outs[0].rows, outs[1].rows);
        assert_eq!(outs[0].rows, outs[2].rows);
    }

    #[test]
    fn grouped_aggregation_identical_on_all_paths() {
        let (mut mem, c) = setup();
        let outs = all_paths(
            &mut mem,
            &c,
            "SELECT grp, count(*), sum(qty), avg(qty) FROM t WHERE id < 100 GROUP BY grp",
        );
        for o in &outs {
            assert_eq!(o.rows.len(), 2);
            // Group A: even ids 0..100 -> 50 rows, sum 2450.
            assert_eq!(o.rows[0][0], Value::Str("A".into()));
            assert_eq!(o.rows[0][1], Value::I64(50));
            assert_eq!(o.rows[0][2], Value::F64(2450.0));
            assert_eq!(o.rows[0][3], Value::F64(49.0));
        }
        assert_eq!(outs[0].rows, outs[1].rows);
        assert_eq!(outs[0].rows, outs[2].rows);
    }

    #[test]
    fn scalar_aggregates_and_date_predicates() {
        let (mut mem, c) = setup();
        let outs = all_paths(
            &mut mem,
            &c,
            "SELECT min(qty), max(qty), count(*) FROM t WHERE d >= 50 AND d < 60",
        );
        for o in &outs {
            assert_eq!(
                o.rows,
                vec![vec![Value::F64(50.0), Value::F64(59.0), Value::I64(10)]]
            );
        }
    }

    #[test]
    fn optimizer_path_runs_and_reports() {
        let (mut mem, c) = setup();
        let out = crate::run_impl(&mut mem, &c, "SELECT sum(qty) FROM t").unwrap();
        assert_eq!(out.rows[0][0], Value::F64((0..200).map(|i| i as f64).sum()));
        assert!(out.ns > 0.0);
        assert!(out.cost.rm_ns > 0.0);
    }

    #[test]
    fn col_path_unavailable_without_columnar_copy() {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let schema = Schema::from_pairs(&[("x", ColumnType::I64)]);
        let mut rt = RowTable::create(&mut mem, schema, 4).unwrap();
        rt.load(&mut mem, &[Value::I64(1)]).unwrap();
        let mut c = Catalog::new();
        c.register_rows("u", rt);
        let bound = bind(&c, &parse("SELECT x FROM u").unwrap()).unwrap();
        assert!(execute_on_impl(&mut mem, &c, &bound, AccessPath::Col).is_err());
        // But Row and Rm work fine.
        let out = execute_on_impl(&mut mem, &c, &bound, AccessPath::Rm).unwrap();
        assert_eq!(out.rows, vec![vec![Value::I64(1)]]);
    }

    #[test]
    fn empty_result_sets() {
        let (mut mem, c) = setup();
        let outs = all_paths(&mut mem, &c, "SELECT id FROM t WHERE id < 0");
        for o in &outs {
            assert!(o.rows.is_empty());
        }
        let outs = all_paths(&mut mem, &c, "SELECT count(*) FROM t WHERE id < 0");
        for o in &outs {
            assert_eq!(o.rows, vec![vec![Value::I64(0)]]);
        }
    }

    #[test]
    fn order_by_and_limit_apply_on_every_path() {
        let (mut mem, c) = setup();
        let outs = all_paths(
            &mut mem,
            &c,
            "SELECT id, qty FROM t WHERE id < 20 ORDER BY qty DESC LIMIT 3",
        );
        for o in &outs {
            assert_eq!(o.rows.len(), 3);
            assert_eq!(o.rows[0][0], Value::I64(19));
            assert_eq!(o.rows[2][0], Value::I64(17));
        }
        // ORDER BY position and grouped output.
        let outs = all_paths(
            &mut mem,
            &c,
            "SELECT grp, sum(qty) FROM t GROUP BY grp ORDER BY 2 DESC LIMIT 1",
        );
        for o in &outs {
            assert_eq!(o.rows.len(), 1);
            assert_eq!(o.rows[0][0], Value::Str("B".into())); // odd ids sum higher
        }
    }

    #[test]
    fn order_by_validation_errors() {
        let (_, c) = setup();
        assert!(bind(&c, &parse("SELECT id FROM t ORDER BY 2").unwrap()).is_err());
        assert!(bind(&c, &parse("SELECT id FROM t ORDER BY qty").unwrap()).is_err());
        assert!(bind(&c, &parse("SELECT id, qty FROM t ORDER BY qty").unwrap()).is_ok());
    }

    /// A fixture the optimizer always routes to RM: a wide (16 × i64)
    /// rows-only table where the packed projection is far cheaper than a
    /// full-row software scan. c_j(i) = i*16 + j.
    fn rm_setup(rows: usize) -> (MemoryHierarchy, Catalog) {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let pairs: Vec<(String, ColumnType)> = (0..16)
            .map(|i| (format!("c{i}"), ColumnType::I64))
            .collect();
        let pr: Vec<(&str, ColumnType)> = pairs.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let schema = Schema::from_pairs(&pr);
        let mut rt = RowTable::create(&mut mem, schema, rows).unwrap();
        for i in 0..rows as i64 {
            let row: Vec<Value> = (0..16).map(|j| Value::I64(i * 16 + j)).collect();
            rt.load(&mut mem, &row).unwrap();
        }
        let mut c = Catalog::new();
        c.register_rows("t", rt);
        (mem, c)
    }

    const RM_SQL: &str = "SELECT c0, c5 FROM t WHERE c0 < 800";

    #[test]
    fn resilient_quiet_context_matches_plain_execution() {
        let (mut mem, c) = setup();
        let bound = bind(&c, &parse("SELECT id, qty FROM t WHERE id < 50").unwrap()).unwrap();
        let plain = execute_impl(&mut mem, &c, &bound).unwrap();
        let mut ctx = FaultContext::quiet();
        let out = execute_resilient_impl(&mut mem, &c, &bound, &mut ctx).unwrap();
        assert_eq!(out.rows, plain.rows);
        assert_eq!(out.degraded_from, None);
        assert_eq!(ctx.fallbacks, 0);

        // And on an RM-routed plan, quiet faults deliver on the RM path
        // with its stats attached.
        let (mut mem, c) = rm_setup(1000);
        let bound = bind(&c, &parse(RM_SQL).unwrap()).unwrap();
        let mut ctx = FaultContext::quiet();
        let out = execute_resilient_impl(&mut mem, &c, &bound, &mut ctx).unwrap();
        assert_eq!(out.path, AccessPath::Rm);
        assert_eq!(out.degraded_from, None);
        let stats = out.rm_stats.expect("RM run must report device stats");
        assert_eq!(stats.rows_scanned, 1000);
        assert_eq!(stats.injected_faults, 0);
    }

    #[test]
    fn rm_fault_past_budget_degrades_transparently() {
        let (mut mem, c) = rm_setup(1000);
        let bound = bind(&c, &parse(RM_SQL).unwrap()).unwrap();
        let expected = execute_on_impl(&mut mem, &c, &bound, AccessPath::Row).unwrap();
        // Every delivery times out: the RM attempt must exhaust its budget.
        let cfg = FaultConfig {
            rm_timeout_prob: 1.0,
            ..FaultConfig::quiet(9)
        };
        let mut ctx = FaultContext::new(cfg, RecoveryPolicy::default());
        let out = execute_resilient_impl(&mut mem, &c, &bound, &mut ctx).unwrap();
        assert_eq!(out.degraded_from, Some(AccessPath::Rm));
        assert_eq!(out.path, AccessPath::Row, "no col copy: fallback is Row");
        assert_eq!(ctx.fallbacks, 1);
        let stats = out.rm_stats.expect("failed attempt stats must survive");
        assert!(stats.delivery_timeouts > 0);
        assert!(stats.injected_faults > 0);
        assert_eq!(out.rows, expected.rows, "degraded answer must be identical");
        assert!(out.ns > expected.ns, "ns must include the wasted RM time");
    }

    #[test]
    fn breaker_opens_after_repeated_rm_failures_and_skips_the_device() {
        let (mut mem, c) = rm_setup(1000);
        let bound = bind(&c, &parse(RM_SQL).unwrap()).unwrap();
        let cfg = FaultConfig {
            rm_timeout_prob: 1.0,
            ..FaultConfig::quiet(9)
        };
        let policy = RecoveryPolicy::default();
        let mut ctx = FaultContext::new(cfg, policy);
        let expected = execute_on_impl(&mut mem, &c, &bound, AccessPath::Row).unwrap();
        for _ in 0..policy.breaker_threshold + 2 {
            let out = execute_resilient_impl(&mut mem, &c, &bound, &mut ctx).unwrap();
            assert_eq!(out.rows, expected.rows);
            assert_eq!(out.degraded_from, Some(AccessPath::Rm));
        }
        assert_eq!(ctx.fallbacks, policy.breaker_threshold as u64);
        assert_eq!(
            ctx.breaker_skips, 2,
            "once open, the device is not even tried"
        );
        assert_eq!(ctx.rm_health().trips, 1);
    }

    #[test]
    fn non_rm_plans_ignore_the_fault_context() {
        let (mut mem, c) = setup();
        let bound = bind(&c, &parse("SELECT id FROM t WHERE id < 3").unwrap()).unwrap();
        let cfg = FaultConfig::uniform(4, 1.0);
        let mut ctx = FaultContext::new(cfg, RecoveryPolicy::default());
        let (path, _) = choose_path(
            mem.config(),
            &RmConfig::prototype(),
            c.get("t").unwrap(),
            &bound,
        )
        .unwrap();
        assert_ne!(path, AccessPath::Rm, "fixture must route to software");
        let out = execute_resilient_impl(&mut mem, &c, &bound, &mut ctx).unwrap();
        assert_eq!(out.rows.len(), 3);
        assert_eq!(ctx.fallbacks, 0);
        assert_eq!(ctx.plan.stats().total(), 0);
    }

    #[test]
    fn profile_records_scan_merge_and_sort_phases() {
        let (mut mem, c) = setup();
        let bound = bind(
            &c,
            &parse("SELECT id FROM t WHERE id < 20 ORDER BY 1 DESC").unwrap(),
        )
        .unwrap();
        let out = execute_on_impl(&mut mem, &c, &bound, AccessPath::Row).unwrap();
        let names: Vec<&str> = out.profile.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec![
                "query::scan::row",
                "query::stage::merge",
                "query::post::sort"
            ]
        );
        assert!(out.profile[0].cycles > 0);
        assert!(out.profile[0].bytes_read > 0);
        assert!(!out.profile[0].failed);
        // The merge and sort phases moved no hierarchy bytes (host-side).
        assert_eq!(out.profile[1].bytes_read, 0);
        assert_eq!(out.profile[2].bytes_read, 0);
        // Metrics accounted the run, including per-operator actuals.
        assert_eq!(mem.metrics().counter("query.executions"), 1);
        assert_eq!(mem.metrics().counter("query.path.row"), 1);
        assert_eq!(mem.metrics().counter("query.rows_out"), 20);
        assert_eq!(mem.metrics().counter("query.op.scan_row.rows_in"), 200);
        assert_eq!(mem.metrics().counter("query.op.filter.rows_in"), 200);
        assert_eq!(mem.metrics().counter("query.op.filter.rows_out"), 20);
        assert_eq!(mem.metrics().counter("query.op.project.rows_out"), 20);
        assert_eq!(mem.metrics().counter("query.op.merge.invocations"), 1);
        assert_eq!(mem.metrics().counter("query.op.merge.rows_out"), 20);
    }

    #[test]
    fn traced_query_emits_balanced_spans_even_when_degrading() {
        let (mut mem, c) = rm_setup(1000);
        mem.set_recorder(Box::new(fabric_sim::RingRecorder::new(4096)));
        let bound = bind(&c, &parse(RM_SQL).unwrap()).unwrap();
        let cfg = FaultConfig {
            rm_timeout_prob: 1.0,
            ..FaultConfig::quiet(9)
        };
        let mut ctx = FaultContext::new(cfg, RecoveryPolicy::default());
        let out = execute_resilient_impl(&mut mem, &c, &bound, &mut ctx).unwrap();
        assert_eq!(out.degraded_from, Some(AccessPath::Rm));
        // The failed RM attempt stays in the profile, marked failed,
        // followed by the software fallback scan.
        let rm_phase = out
            .profile
            .iter()
            .find(|p| p.name == "query::scan::rm")
            .expect("failed RM attempt must be profiled");
        assert!(rm_phase.failed);
        let fb_phase = out
            .profile
            .iter()
            .find(|p| p.name == "query::scan::row")
            .expect("fallback scan must be profiled");
        assert!(!fb_phase.failed);
        assert_eq!(mem.metrics().counter("query.degraded"), 1);
        // Every begin has a matching end — the validator checks balance.
        let json = mem.export_trace().expect("ring recorder exports");
        let summary = fabric_sim::validate_chrome_trace(&json).expect("trace must validate");
        assert!(summary.begins > 0 && summary.begins == summary.ends);
        assert!(summary.instants > 0, "degrade instant must be present");
    }

    #[test]
    fn string_equality_predicates() {
        let (mut mem, c) = setup();
        let outs = all_paths(&mut mem, &c, "SELECT count(*) FROM t WHERE grp = 'B'");
        for o in &outs {
            assert_eq!(o.rows, vec![vec![Value::I64(100)]]);
        }
    }

    #[test]
    fn keyed_cache_hits_replay_without_hierarchy_traffic() {
        let (mut mem, c) = setup();
        let bound = bind(&c, &parse("SELECT id, qty FROM t WHERE id < 7").unwrap()).unwrap();
        let entry = c.get("t").unwrap();
        let verified = analyze(entry, &bound, &RmConfig::prototype()).unwrap();
        let (path, cost) = choose_path_parallel(
            mem.config(),
            &RmConfig::prototype(),
            entry,
            &bound,
            mem.num_cores(),
        )
        .unwrap();
        let mut cacheobj = OpCache::default();
        let mut scratch = Scratchpad::new();
        let key = opcache::keyed(opcache::plan_signature(&bound, 200, "g"), path);

        let cold = run_verified(
            &mut mem,
            entry,
            &verified,
            path,
            cost.clone(),
            Resilience::Plain,
            CacheSlot::Keyed(&mut cacheobj, key),
            &mut scratch,
            RecordMeta::default(),
        )
        .unwrap();
        assert_eq!(cacheobj.stats(), (0, 1));
        assert_eq!(cacheobj.insertions(), 1);

        let warm = run_verified(
            &mut mem,
            entry,
            &verified,
            path,
            cost,
            Resilience::Plain,
            CacheSlot::Keyed(&mut cacheobj, key),
            &mut scratch,
            RecordMeta::default(),
        )
        .unwrap();
        assert_eq!(cacheobj.stats(), (1, 1));
        assert_eq!(warm.rows, cold.rows, "hit must be bit-identical");
        assert_eq!(warm.path, cold.path);
        // The hit replayed from host memory: zero hierarchy traffic, zero
        // stall, but a nonzero CPU probe charge so latency stays observable.
        let names: Vec<&str> = warm.profile.iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["query::opcache::hit"]);
        assert_eq!(warm.profile[0].bytes_read, 0);
        assert_eq!(warm.profile[0].stall_cycles, 0);
        assert!(warm.profile[0].cycles > 0);
        let total_bytes: u64 = warm.cores.iter().map(|a| a.bytes_read).sum();
        assert_eq!(total_bytes, 0, "cache hits never touch the hierarchy");
        assert!(warm.ns < cold.ns, "hit must be cheaper than the cold run");
        assert_eq!(mem.metrics().counter("query.opcache.hits"), 1);
        assert_eq!(mem.metrics().counter("query.opcache.misses"), 1);
        assert_eq!(mem.metrics().counter("query.opcache.insertions"), 1);
    }

    #[test]
    fn cache_hit_still_applies_sort_and_limit() {
        let (mut mem, c) = setup();
        // Same plan shape, different ORDER BY/LIMIT: both map to one cache
        // entry, and the hit re-applies its own post-processing.
        let plain = bind(&c, &parse("SELECT id FROM t WHERE id < 10").unwrap()).unwrap();
        let sorted = bind(
            &c,
            &parse("SELECT id FROM t WHERE id < 10 ORDER BY 1 DESC LIMIT 3").unwrap(),
        )
        .unwrap();
        let entry = c.get("t").unwrap();
        let mut cacheobj = OpCache::default();
        let mut scratch = Scratchpad::new();
        let base = opcache::plan_signature(&plain, 200, "g");
        assert_eq!(
            base,
            opcache::plan_signature(&sorted, 200, "g"),
            "post-processing is excluded from the signature"
        );

        for (bound, expect_first, expect_len) in
            [(&plain, Value::I64(0), 10), (&sorted, Value::I64(9), 3)]
        {
            let verified = analyze(entry, bound, &RmConfig::prototype()).unwrap();
            let (path, cost) = choose_path_parallel(
                mem.config(),
                &RmConfig::prototype(),
                entry,
                bound,
                mem.num_cores(),
            )
            .unwrap();
            let out = run_verified(
                &mut mem,
                entry,
                &verified,
                path,
                cost,
                Resilience::Plain,
                CacheSlot::Keyed(&mut cacheobj, opcache::keyed(base, path)),
                &mut scratch,
                RecordMeta::default(),
            )
            .unwrap();
            assert_eq!(out.rows.len(), expect_len);
            assert_eq!(out.rows[0][0], expect_first);
        }
        assert_eq!(cacheobj.stats(), (1, 1), "second plan shape hit the entry");
    }

    #[test]
    fn degraded_runs_are_never_cached() {
        let (mut mem, c) = rm_setup(1000);
        let bound = bind(&c, &parse(RM_SQL).unwrap()).unwrap();
        let entry = c.get("t").unwrap();
        let verified = analyze(entry, &bound, &RmConfig::prototype()).unwrap();
        let (path, cost) = choose_path_parallel(
            mem.config(),
            &RmConfig::prototype(),
            entry,
            &bound,
            mem.num_cores(),
        )
        .unwrap();
        assert_eq!(path, AccessPath::Rm);
        let cfg = FaultConfig {
            rm_timeout_prob: 1.0,
            ..FaultConfig::quiet(9)
        };
        let mut ctx = FaultContext::new(cfg, RecoveryPolicy::default());
        let mut cacheobj = OpCache::default();
        let mut scratch = Scratchpad::new();
        let key = opcache::keyed(opcache::plan_signature(&bound, 1000, "g"), path);
        let out = run_verified(
            &mut mem,
            entry,
            &verified,
            path,
            cost,
            Resilience::Resilient(&mut ctx),
            CacheSlot::Keyed(&mut cacheobj, key),
            &mut scratch,
            RecordMeta::default(),
        )
        .unwrap();
        assert_eq!(out.degraded_from, Some(AccessPath::Rm));
        assert_eq!(
            cacheobj.insertions(),
            0,
            "degraded output must be re-earned"
        );
        assert!(cacheobj.is_empty());
    }
}
