//! Typed scratch buffers for the staged executor (DESIGN.md §16).
//!
//! Every stage of the operator DAG works over morsel-sized vectors —
//! decoded tuples, selection vectors — whose *contents* live for one
//! morsel but whose *allocations* are identical from morsel to morsel
//! and from query to query. A [`Scratchpad`] owns those allocations:
//! stages borrow a buffer with `take_*`, return it with `put_*`, and the
//! next stage (or the next query) reuses the same backing storage.
//!
//! Reuse must never alias a live buffer. Two mechanisms enforce that:
//!
//! * **ownership** — `take_*` moves the `Vec` out of the pool, so two
//!   concurrent takers can never observe the same allocation;
//! * **epochs** — every [`BufferRef`] is stamped with the scratchpad's
//!   query epoch at take time, and `put_*` asserts the stamp matches the
//!   *current* epoch. A buffer held across [`Scratchpad::begin_query`]
//!   (i.e. across a query boundary) is from a dead generation; returning
//!   it would let a stale stage recycle storage the new query may have
//!   handed out. That bug panics instead of corrupting results.
//!
//! All of this is host-side bookkeeping: taking or returning a buffer
//! never advances the simulated clock, so an executor using a scratchpad
//! is cycle-identical to one allocating fresh vectors.

use fabric_types::Value;

/// What a pooled buffer holds. Used for the epoch assert's diagnostics
/// and to keep the two pools' tickets from being interchangeable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferKind {
    /// A `Vec<Value>` tuple/feed buffer.
    Values,
    /// A `Vec<u32>` selection vector.
    Selection,
}

/// A ticket for a buffer taken from a [`Scratchpad`]: which pool it came
/// from and the query epoch it was taken in. Returning the buffer
/// requires the ticket, and the ticket is only valid within the epoch
/// that minted it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferRef {
    kind: BufferKind,
    epoch: u64,
}

impl BufferRef {
    /// The pool this ticket belongs to.
    pub fn kind(&self) -> BufferKind {
        self.kind
    }

    /// The query epoch the buffer was taken in.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// A per-session pool of morsel-sized vectors, recycled across stages
/// and queries. See the module docs for the aliasing rules.
#[derive(Debug, Default)]
pub struct Scratchpad {
    epoch: u64,
    vals: Vec<Vec<Value>>,
    sels: Vec<Vec<u32>>,
    reuses: u64,
    allocs: u64,
    /// High-water mark of pooled capacity bytes (sampled on every
    /// `put_*`), exported as the `query.scratchpad.hwm_bytes` gauge.
    hwm_bytes: u64,
}

impl Scratchpad {
    pub fn new() -> Self {
        Scratchpad::default()
    }

    /// Start a new query: bump the epoch so tickets from earlier queries
    /// are invalidated. Buffers already back in the pools stay pooled.
    pub fn begin_query(&mut self) {
        self.epoch += 1;
    }

    /// The current query epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Buffers served from the pool instead of the allocator.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Buffers that had to be freshly allocated.
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// High-water mark of the pools' retained capacity, in bytes — how
    /// much backing storage query execution has ever parked here at once.
    pub fn hwm_bytes(&self) -> u64 {
        self.hwm_bytes
    }

    /// Re-sample the high-water mark after a buffer returns to a pool.
    fn note_hwm(&mut self) {
        let vals: usize = self
            .vals
            .iter()
            .map(|b| b.capacity() * size_of::<Value>())
            .sum();
        let sels: usize = self
            .sels
            .iter()
            .map(|b| b.capacity() * size_of::<u32>())
            .sum();
        self.hwm_bytes = self.hwm_bytes.max((vals + sels) as u64);
    }

    /// Take a `Vec<Value>` buffer (cleared, capacity retained from its
    /// previous life) plus the ticket required to return it.
    pub fn take_vals(&mut self) -> (BufferRef, Vec<Value>) {
        let buf = match self.vals.pop() {
            Some(b) => {
                self.reuses += 1;
                b
            }
            None => {
                self.allocs += 1;
                Vec::new()
            }
        };
        (
            BufferRef {
                kind: BufferKind::Values,
                epoch: self.epoch,
            },
            buf,
        )
    }

    /// Return a `Vec<Value>` buffer to the pool.
    ///
    /// # Panics
    /// If the ticket is from another pool or a previous query epoch —
    /// both are aliasing bugs in the executor, not recoverable states.
    pub fn put_vals(&mut self, r: BufferRef, mut buf: Vec<Value>) {
        assert_eq!(r.kind, BufferKind::Values, "ticket is not a Values ticket");
        assert_eq!(
            r.epoch, self.epoch,
            "stale buffer returned across a query boundary (ticket epoch {} != current {})",
            r.epoch, self.epoch
        );
        buf.clear();
        self.vals.push(buf);
        self.note_hwm();
    }

    /// Take a `Vec<u32>` selection-vector buffer plus its ticket.
    pub fn take_sel(&mut self) -> (BufferRef, Vec<u32>) {
        let buf = match self.sels.pop() {
            Some(b) => {
                self.reuses += 1;
                b
            }
            None => {
                self.allocs += 1;
                Vec::new()
            }
        };
        (
            BufferRef {
                kind: BufferKind::Selection,
                epoch: self.epoch,
            },
            buf,
        )
    }

    /// Return a selection-vector buffer to the pool.
    ///
    /// # Panics
    /// If the ticket is from another pool or a previous query epoch.
    pub fn put_sel(&mut self, r: BufferRef, mut buf: Vec<u32>) {
        assert_eq!(
            r.kind,
            BufferKind::Selection,
            "ticket is not a Selection ticket"
        );
        assert_eq!(
            r.epoch, self.epoch,
            "stale buffer returned across a query boundary (ticket epoch {} != current {})",
            r.epoch, self.epoch
        );
        buf.clear();
        self.sels.push(buf);
        self.note_hwm();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_types::Value;

    #[test]
    fn buffers_recycle_across_queries() {
        let mut s = Scratchpad::new();
        s.begin_query();
        let (r, mut v) = s.take_vals();
        v.push(Value::I64(1));
        let cap_marker = {
            v.reserve(1024);
            v.capacity()
        };
        s.put_vals(r, v);
        assert_eq!(s.allocs(), 1);
        assert_eq!(s.reuses(), 0);

        // Next query: same allocation comes back, cleared.
        s.begin_query();
        let (r2, v2) = s.take_vals();
        assert!(v2.is_empty(), "pooled buffers are cleared on return");
        assert!(v2.capacity() >= cap_marker, "capacity survives pooling");
        assert_eq!(s.reuses(), 1);
        s.put_vals(r2, v2);

        let (r3, sv) = s.take_sel();
        assert_eq!(r3.kind(), BufferKind::Selection);
        s.put_sel(r3, sv);
        assert_eq!(s.allocs(), 2);
        assert!(
            s.hwm_bytes() >= (cap_marker * size_of::<Value>()) as u64,
            "high-water mark saw the grown buffer"
        );
    }

    #[test]
    fn two_takers_never_share_an_allocation() {
        let mut s = Scratchpad::new();
        s.begin_query();
        let (ra, mut a) = s.take_vals();
        let (rb, mut b) = s.take_vals();
        // Ownership makes aliasing impossible; check the pool really
        // handed out two distinct allocations (fresh empty Vecs share the
        // dangling sentinel pointer, so force both to allocate first).
        a.push(fabric_types::Value::I64(1));
        b.push(fabric_types::Value::I64(2));
        assert_ne!(a.as_ptr(), b.as_ptr());
        s.put_vals(ra, a);
        s.put_vals(rb, b);
    }

    #[test]
    #[should_panic(expected = "stale buffer returned across a query boundary")]
    fn returning_a_stale_epoch_buffer_panics() {
        let mut s = Scratchpad::new();
        s.begin_query();
        let (r, v) = s.take_vals();
        s.begin_query(); // query boundary while the buffer is still out
        s.put_vals(r, v);
    }

    #[test]
    #[should_panic(expected = "not a Values ticket")]
    fn returning_to_the_wrong_pool_panics() {
        let mut s = Scratchpad::new();
        s.begin_query();
        let (r, _sv) = s.take_sel();
        s.put_vals(r, Vec::new());
    }
}
