//! Signature-keyed operator cache (DESIGN.md §16).
//!
//! The staged executor's stage-0 + merge output for a given plan is a
//! pure function of (table contents, plan shape, predicate constants,
//! access path). A [`Session`](crate::Session) therefore memoizes that
//! output in an [`OpCache`] keyed by a 128-bit FNV-1a signature over
//! exactly those inputs; a hit returns the memoized rows without
//! re-touching the memory hierarchy at all. ORDER BY and LIMIT are
//! deliberately **excluded** from the signature — cached rows are the
//! pre-sort/pre-limit stage output, so plans differing only in their
//! post-processing share one entry.
//!
//! Soundness:
//!
//! * the cache lives on the engine and is cleared whenever the catalog
//!   or machine shape changes (`register*`, `set_cores`,
//!   `open_recovered`, `clear_plan_cache`) — a signature can never
//!   outlive the table contents it hashed;
//! * only *clean* runs are inserted: a degraded run or an RM run with
//!   injected faults is never memoized, so fault-path behaviour
//!   (fallback counters, breaker state, chaos-suite invariants) is
//!   identical with or without the cache;
//! * the map is a `BTreeMap` — iteration order is never consulted, but
//!   the determinism rules of this workspace ban `HashMap` in
//!   result-affecting library code outright.

use crate::bind::BoundQuery;
use crate::cost::AccessPath;
use fabric_types::Value;
use relmem::RmStats;
use std::collections::{BTreeMap, VecDeque};

/// Default byte budget for memoized stage outputs. Generous on purpose:
/// the CI workloads' working sets fit with a wide margin, so eviction
/// only triggers on genuinely unbounded workloads (asserted by the
/// `abl_opcache` bench, whose hit ratio would collapse if CI-sized
/// entries were evicted).
pub const DEFAULT_OPCACHE_CAP_BYTES: u64 = 8 << 20;

/// One memoized stage output: the pre-sort/pre-limit rows, the path that
/// produced them, the (clean) device stats when that path was RM, and
/// the entry's approximate heap footprint for the byte budget.
struct CachedScan {
    rows: Vec<Vec<Value>>,
    path: AccessPath,
    rm_stats: Option<RmStats>,
    bytes: u64,
}

/// Approximate heap footprint of a memoized row set: enum payload per
/// value (plus string bytes), vector headers per row.
fn rows_bytes(rows: &[Vec<Value>]) -> u64 {
    let val = size_of::<Value>() as u64;
    let header = size_of::<Vec<Value>>() as u64;
    rows.iter()
        .map(|r| {
            header
                + r.iter()
                    .map(|v| {
                        val + match v {
                            Value::Str(s) => s.len() as u64,
                            _ => 0,
                        }
                    })
                    .sum::<u64>()
        })
        .sum()
}

/// The per-engine operator cache. See the module docs for keying and
/// invalidation rules.
pub struct OpCache {
    map: BTreeMap<u128, CachedScan>,
    /// Insertion order for FIFO eviction under the byte budget.
    order: VecDeque<u128>,
    bytes: u64,
    cap_bytes: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

impl Default for OpCache {
    fn default() -> Self {
        OpCache {
            map: BTreeMap::new(),
            order: VecDeque::new(),
            bytes: 0,
            cap_bytes: DEFAULT_OPCACHE_CAP_BYTES,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
        }
    }
}

impl OpCache {
    /// Look up a signature; a hit clones out the memoized stage output.
    pub(crate) fn probe(
        &mut self,
        key: u128,
    ) -> Option<(Vec<Vec<Value>>, AccessPath, Option<RmStats>)> {
        match self.map.get(&key) {
            Some(e) => {
                self.hits += 1;
                Some((e.rows.clone(), e.path, e.rm_stats.clone()))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Memoize a clean run's stage output under its signature, then
    /// evict oldest-first until the byte budget holds (the entry just
    /// inserted is never evicted — a cache that cannot admit the current
    /// query is useless).
    pub(crate) fn insert(
        &mut self,
        key: u128,
        rows: Vec<Vec<Value>>,
        path: AccessPath,
        rm_stats: Option<RmStats>,
    ) {
        self.insertions += 1;
        let bytes = rows_bytes(&rows);
        if let Some(old) = self.map.insert(
            key,
            CachedScan {
                rows,
                path,
                rm_stats,
                bytes,
            },
        ) {
            self.bytes -= old.bytes;
            self.order.retain(|k| *k != key);
        }
        self.bytes += bytes;
        self.order.push_back(key);
        while self.bytes > self.cap_bytes && self.order.len() > 1 {
            let victim = self.order[0];
            if victim == key {
                break;
            }
            self.order.pop_front();
            if let Some(e) = self.map.remove(&victim) {
                self.bytes -= e.bytes;
                self.evictions += 1;
            }
        }
    }

    /// `(hits, misses)` since the engine was created (cleared entries do
    /// not reset the counters).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Entries inserted since the engine was created.
    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    /// Entries evicted by the byte budget since the engine was created
    /// (`clear` is invalidation, not eviction, and is not counted here).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Approximate bytes currently memoized.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The byte budget evictions hold the cache under.
    pub fn cap_bytes(&self) -> u64 {
        self.cap_bytes
    }

    /// Override the byte budget (tests and capacity experiments); evicts
    /// nothing retroactively — the next insert enforces the new budget.
    pub fn set_cap_bytes(&mut self, cap: u64) {
        self.cap_bytes = cap.max(1);
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drop every entry (catalog or machine-shape change).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
        self.bytes = 0;
    }
}

/// How a pipeline run participates in the operator cache: `None` runs
/// cold and fills nothing (measurement entry points — benches and
/// EXPLAIN ANALYZE must observe the real hierarchy), `Keyed` probes and
/// fills the session's cache under a precomputed signature.
pub(crate) enum CacheSlot<'c> {
    None,
    Keyed(&'c mut OpCache, u128),
}

impl CacheSlot<'_> {
    pub(crate) fn probe(&mut self) -> Option<(Vec<Vec<Value>>, AccessPath, Option<RmStats>)> {
        match self {
            CacheSlot::Keyed(c, key) => c.probe(*key),
            CacheSlot::None => None,
        }
    }
}

/// 128-bit FNV-1a over the cache-relevant plan identity: table name,
/// row count, the RM geometry the analyzer admitted, and the plan shape
/// (touched columns, predicates *with constants*, output items, GROUP
/// BY). `order_by` and `limit` are excluded by design — see module docs.
pub(crate) fn plan_signature(bound: &BoundQuery, table_rows: usize, geometry: &str) -> u128 {
    let mut h = Fnv128::new();
    h.update(bound.table.as_bytes());
    h.update(&(table_rows as u64).to_le_bytes());
    h.update(geometry.as_bytes());
    h.update(
        format!(
            "{:?}|{:?}|{:?}|{:?}",
            bound.touched, bound.preds, bound.items, bound.group_by
        )
        .as_bytes(),
    );
    h.finish()
}

/// Mix the executed access path into a base signature: the same plan on
/// a different path is a different cache entry (paths are answers-equal
/// but stats/path metadata differ).
pub(crate) fn keyed(base: u128, path: AccessPath) -> u128 {
    let tag: u8 = match path {
        AccessPath::Row => 1,
        AccessPath::Col => 2,
        AccessPath::Rm => 3,
    };
    let mut h = Fnv128(base);
    h.update(&[tag]);
    h.finish()
}

struct Fnv128(u128);

impl Fnv128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013B;

    fn new() -> Self {
        Fnv128(Self::OFFSET)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn finish(&self) -> u128 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::OutputItem;
    use fabric_types::{CmpOp, Expr};

    fn q(table: &str, pred_lit: i64) -> BoundQuery {
        BoundQuery {
            table: table.into(),
            touched: vec![0, 2],
            preds: vec![(0, CmpOp::Lt, Value::I64(pred_lit))],
            items: vec![OutputItem::Expr(Expr::Col(0))],
            group_by: vec![],
            order_by: vec![],
            limit: None,
        }
    }

    #[test]
    fn signature_tracks_constants_but_not_post_processing() {
        let base = plan_signature(&q("t", 5), 100, "g");
        assert_eq!(base, plan_signature(&q("t", 5), 100, "g"), "deterministic");
        assert_ne!(base, plan_signature(&q("t", 6), 100, "g"), "constants");
        assert_ne!(base, plan_signature(&q("u", 5), 100, "g"), "table");
        assert_ne!(base, plan_signature(&q("t", 5), 101, "g"), "row count");
        assert_ne!(base, plan_signature(&q("t", 5), 100, "g2"), "geometry");

        let mut sorted = q("t", 5);
        sorted.order_by = vec![(0, true)];
        sorted.limit = Some(3);
        assert_eq!(
            base,
            plan_signature(&sorted, 100, "g"),
            "ORDER BY/LIMIT share the cached stage output"
        );

        let k = keyed(base, AccessPath::Row);
        assert_ne!(k, keyed(base, AccessPath::Col));
        assert_ne!(k, keyed(base, AccessPath::Rm));
    }

    #[test]
    fn probe_and_insert_round_trip_with_counters() {
        let mut c = OpCache::default();
        assert!(c.probe(7).is_none());
        c.insert(7, vec![vec![Value::I64(1)]], AccessPath::Col, None);
        let (rows, path, rm) = c.probe(7).expect("hit");
        assert_eq!(rows, vec![vec![Value::I64(1)]]);
        assert_eq!(path, AccessPath::Col);
        assert!(rm.is_none());
        assert_eq!(c.stats(), (1, 1));
        assert_eq!(c.insertions(), 1);
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats(), (1, 1), "counters survive invalidation");
        assert_eq!(c.bytes(), 0, "invalidation returns the byte budget");
    }

    #[test]
    fn byte_budget_evicts_oldest_first_but_never_the_new_entry() {
        let mut c = OpCache::default();
        let wide = || vec![vec![Value::I64(0); 4]; 8];
        c.set_cap_bytes(rows_bytes(&wide()) * 2);
        c.insert(1, wide(), AccessPath::Row, None);
        c.insert(2, wide(), AccessPath::Row, None);
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
        c.insert(3, wide(), AccessPath::Row, None);
        assert_eq!(c.len(), 2, "budget holds two entries");
        assert_eq!(c.evictions(), 1);
        assert!(c.probe(1).is_none(), "oldest entry evicted");
        assert!(c.probe(3).is_some(), "the new entry survives");
        assert!(c.bytes() <= c.cap_bytes());

        // One entry larger than the whole budget is still admitted.
        c.set_cap_bytes(1);
        c.insert(9, wide(), AccessPath::Col, None);
        assert!(c.probe(9).is_some());
        assert_eq!(c.len(), 1);

        // Re-inserting under the same key replaces, not duplicates.
        let before = c.bytes();
        c.insert(9, wide(), AccessPath::Col, None);
        assert_eq!(c.bytes(), before);
        assert_eq!(c.len(), 1);
    }
}
