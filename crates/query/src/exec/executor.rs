//! The staged query executor: one lowered operator DAG per run, fused
//! vectorized stage-0 kernels per path, scratch buffers from the
//! session's [`Scratchpad`].
//!
//! [`QueryExecutor`] is stage 0 of the pipeline in [`super::run_verified`]:
//! it drives the path-specific fused kernel over morsels, schedules each
//! morsel onto the earliest-free simulated core, and returns the
//! per-morsel partial [`Consumer`]s. The pipeline-breaking merge (stage 1)
//! stays in the driver, where it runs as its own profiled phase.
//!
//! Per-operator actuals accumulate on the DAG nodes as morsels flow
//! through, and [`QueryExecutor::record_metrics`] exports them as
//! `query.op.<name>.{invocations,rows_in,rows_out}` counters.

use crate::analyze::VerifiedQuery;
use crate::bind::BoundQuery;
use crate::catalog::TableEntry;
use crate::cost::AccessPath;
use colstore::exec as colx;
use fabric_sim::{MemoryHierarchy, MetricsRegistry};
use fabric_types::{FabricError, Result, Value};
use relmem::{EphemeralColumns, RmConfig, RmStats};

use super::buffer::Scratchpad;
use super::operators::{earliest_core, Consumer, OpKind, OpNode};
use super::{FaultContext, MORSEL_ROWS};

/// Stage-0 executor for one verified plan on one access path. Lowers the
/// plan to its operator DAG at construction; [`Self::stages`] exposes the
/// stage partition (streamable operators fuse, `Merge` breaks).
pub struct QueryExecutor<'q> {
    verified: &'q VerifiedQuery<'q>,
    path: AccessPath,
    nodes: Vec<OpNode>,
}

impl<'q> QueryExecutor<'q> {
    /// Lower `verified` to its operator DAG for `path`.
    pub fn new(verified: &'q VerifiedQuery<'q>, path: AccessPath) -> Self {
        let bound = verified.bound();
        let mut nodes = vec![OpNode::new(OpKind::Scan(path))];
        if !bound.preds.is_empty() {
            nodes.push(OpNode::new(OpKind::Filter));
        }
        nodes.push(OpNode::new(if bound.has_aggregates() {
            OpKind::Aggregate
        } else {
            OpKind::Project
        }));
        nodes.push(OpNode::new(OpKind::Merge));
        QueryExecutor {
            verified,
            path,
            nodes,
        }
    }

    fn bound(&self) -> &'q BoundQuery {
        self.verified.bound()
    }

    /// The stage partition of the DAG: consecutive streamable operators
    /// fuse into one stage; each pipeline breaker is a stage of its own.
    pub fn stages(&self) -> Vec<Vec<&'static str>> {
        let mut stages = Vec::new();
        let mut fused = Vec::new();
        for n in &self.nodes {
            if n.kind.streamable() {
                fused.push(n.kind.name());
            } else {
                if !fused.is_empty() {
                    stages.push(std::mem::take(&mut fused));
                }
                stages.push(vec![n.kind.name()]);
            }
        }
        if !fused.is_empty() {
            stages.push(fused);
        }
        stages
    }

    /// Credit one fused kernel pass (`rows_in` scanned, `rows_out`
    /// surviving the filter) to every stage-0 node it flowed through.
    fn note_scan(&mut self, rows_in: u64, rows_out: u64) {
        for node in &mut self.nodes {
            match node.kind {
                OpKind::Scan(_) => node.stats.record(rows_in, rows_in),
                OpKind::Filter => node.stats.record(rows_in, rows_out),
                OpKind::Project | OpKind::Aggregate => node.stats.record(rows_out, rows_out),
                OpKind::Merge => {} // stage 1: the driver records it
            }
        }
    }

    /// The accumulated per-operator actuals of stage 0, in DAG order,
    /// for nodes that ran (merge is driver-owned and never appears).
    /// Carried out through `run_scan` so `finish_output` can attribute
    /// the scan phase's cycles and bytes to individual operators.
    pub(crate) fn op_actuals(&self) -> Vec<(&'static str, fabric_sim::OpStats)> {
        self.nodes
            .iter()
            .filter(|n| n.stats.invocations > 0)
            .map(|n| (n.kind.name(), n.stats))
            .collect()
    }

    /// Export the accumulated per-operator actuals as `query.op.*`
    /// counters (merge is recorded by the driver, which owns that stage).
    pub(crate) fn record_metrics(&self, reg: &mut MetricsRegistry) {
        for n in &self.nodes {
            if n.stats.invocations > 0 {
                n.stats.record_into(reg, "query.op", n.kind.name());
            }
        }
    }

    /// Run stage 0 on a software path (ROW / COL), returning the
    /// per-morsel partials for the driver's merge stage.
    pub(crate) fn run_stage0(
        &mut self,
        mem: &mut MemoryHierarchy,
        entry: &TableEntry,
        scratch: &mut Scratchpad,
    ) -> Result<Vec<Consumer<'q>>> {
        match self.path {
            AccessPath::Col => self.run_col(mem, entry, scratch),
            _ => self.run_row(mem, entry, scratch),
        }
    }

    /// ROW stage 0: fused vectorized scan→filter→consume per morsel
    /// ([`rowstore::scan_range_vectorized`]) — no per-operator
    /// `volcano_next`, no mispredict charge on rejected rows, one decode
    /// buffer recycled from the scratchpad across every morsel.
    fn run_row(
        &mut self,
        mem: &mut MemoryHierarchy,
        entry: &TableEntry,
        scratch: &mut Scratchpad,
    ) -> Result<Vec<Consumer<'q>>> {
        let bound = self.bound();
        let costs = mem.costs();
        let total = entry.rows.len();
        mem.fork_clocks();
        let (tref, mut tuple) = scratch.take_vals();
        let mut partials: Vec<Consumer<'q>> = Vec::with_capacity(total / MORSEL_ROWS + 1);
        let mut start = 0usize;
        loop {
            let end = (start + MORSEL_ROWS).min(total);
            mem.set_active_core(earliest_core(mem));
            let mut consumer = Consumer::new(bound);
            let row_cycles = consumer.row_cycles(&costs);
            let scanned = rowstore::scan_range_vectorized(
                mem,
                &entry.rows,
                &bound.touched,
                &bound.preds,
                start,
                end,
                &mut tuple,
                |mem, vals| {
                    mem.cpu(row_cycles);
                    consumer.feed(vals)
                },
            );
            let counts = match scanned {
                Ok(c) => c,
                Err(e) => {
                    scratch.put_vals(tref, tuple);
                    mem.join_clocks();
                    mem.set_active_core(0);
                    return Err(e);
                }
            };
            self.note_scan(counts.rows_in, counts.rows_out);
            partials.push(consumer);
            start = end;
            if start >= total {
                break;
            }
        }
        scratch.put_vals(tref, tuple);
        mem.join_clocks();
        mem.set_active_core(0);
        Ok(partials)
    }

    /// COL stage 0: column-at-a-time selection into pooled selection
    /// vectors (ping-ponged between candidate passes), then a fused
    /// lockstep reconstruction that keeps the survivor list
    /// register-resident instead of re-reading it from its backing store.
    fn run_col(
        &mut self,
        mem: &mut MemoryHierarchy,
        entry: &TableEntry,
        scratch: &mut Scratchpad,
    ) -> Result<Vec<Consumer<'q>>> {
        let bound = self.bound();
        let table = entry.cols.as_ref().ok_or_else(|| {
            FabricError::Sql(format!("table `{}` has no columnar copy", bound.table))
        })?;
        let costs = mem.costs();

        // Column-at-a-time selection: group conjuncts by column once
        // (shared by every morsel), full scan for the first, candidate
        // passes after. Predicate slots are in range — the analyzer
        // checked them before this path was reachable.
        let by_col: Option<Vec<(usize, Vec<(fabric_types::CmpOp, Value)>)>> =
            if bound.preds.is_empty() {
                None
            } else {
                let mut groups: Vec<(usize, Vec<(fabric_types::CmpOp, Value)>)> = Vec::new();
                for (slot, op, v) in &bound.preds {
                    let col = bound.touched[*slot];
                    match groups.iter_mut().find(|(c, _)| *c == col) {
                        Some((_, list)) => list.push((*op, v.clone())),
                        None => groups.push((col, vec![(*op, v.clone())])),
                    }
                }
                Some(groups)
            };

        let total = table.len();
        mem.fork_clocks();
        let (aref, mut sv) = scratch.take_sel();
        let (bref, mut sv_next) = scratch.take_sel();
        let mut partials: Vec<Consumer<'q>> = Vec::with_capacity(total / MORSEL_ROWS + 1);
        // note_scan is deferred past the morsel loop: `self` can't be
        // borrowed inside it while `partials` holds `'q` consumers.
        let mut morsel_counts: Vec<(u64, u64)> = Vec::new();
        let mut start = 0usize;
        let res = (|| -> Result<()> {
            loop {
                let end = (start + MORSEL_ROWS).min(total);
                mem.set_active_core(earliest_core(mem));
                let mut consumer = Consumer::new(bound);
                let row_cycles = consumer.row_cycles(&costs);
                let kept;
                match &by_col {
                    None => {
                        let mut fed = 0u64;
                        colx::for_each_lockstep_range(
                            mem,
                            table,
                            &bound.touched,
                            start,
                            end,
                            |mem, _, vals| {
                                fed += 1;
                                mem.cpu(row_cycles);
                                consumer.feed(vals)
                            },
                        )?;
                        kept = fed;
                    }
                    Some(groups) => {
                        let mut it = groups.iter();
                        let (c0, preds0) = it.next().ok_or_else(|| {
                            FabricError::Internal("empty predicate grouping".into())
                        })?;
                        colx::scan_filter_conj_range_into(
                            mem, table, *c0, preds0, start, end, &mut sv,
                        )?;
                        for (c, preds) in it {
                            colx::scan_filter_cand_range_into(
                                mem,
                                table,
                                *c,
                                preds,
                                &sv,
                                start,
                                end,
                                &mut sv_next,
                            )?;
                            std::mem::swap(&mut sv, &mut sv_next);
                        }
                        colx::for_each_lockstep_fused(
                            mem,
                            table,
                            &bound.touched,
                            &sv,
                            |mem, _, vals| {
                                mem.cpu(row_cycles);
                                consumer.feed(vals)
                            },
                        )?;
                        kept = sv.len() as u64;
                    }
                }
                partials.push(consumer);
                morsel_counts.push(((end - start) as u64, kept));
                start = end;
                if start >= total {
                    return Ok(());
                }
            }
        })();
        scratch.put_sel(aref, sv);
        scratch.put_sel(bref, sv_next);
        mem.join_clocks();
        mem.set_active_core(0);
        res?;
        for (rows_in, rows_out) in morsel_counts {
            self.note_scan(rows_in, rows_out);
        }
        Ok(partials)
    }

    /// RM stage 0: consume delivered batches with a branch-free
    /// predicate (every conjunct charged and evaluated; rejection is a
    /// data dependency, not a mispredicted branch), rolling partials over
    /// at the same [`MORSEL_ROWS`] boundaries as the software paths.
    pub(crate) fn run_stage0_rm(
        &mut self,
        mem: &mut MemoryHierarchy,
        scratch: &mut Scratchpad,
    ) -> Result<(Vec<Consumer<'q>>, RmStats)> {
        let bound = self.bound();
        let costs = mem.costs();
        // The geometry was admitted by the analyzer; configuration cannot
        // fail.
        let mut eph = EphemeralColumns::configure_verified(
            mem,
            RmConfig::prototype(),
            self.verified.geometry().clone(),
        );

        // RM fan-out: each delivered batch is consumed on the
        // earliest-free core. Batch *content* is timing-independent (the
        // device walks its geometry cursor), so delivery order — and
        // therefore the partial list — is identical for every core count.
        mem.fork_clocks();
        let mut partials: Vec<Consumer<'q>> = Vec::new();
        let mut current = Consumer::new(bound);
        let row_cycles = current.row_cycles(&costs);
        let pred_cycles = costs.value_op * bound.preds.len() as u64;
        let mut consumed = 0usize;
        let (vref, mut vals) = scratch.take_vals();
        let mut batch_counts: Vec<(u64, u64)> = Vec::new();
        loop {
            mem.set_active_core(earliest_core(mem));
            let Some(b) = eph.next_batch(mem) else {
                break;
            };
            let mut kept = 0u64;
            for r in 0..b.len() {
                if consumed > 0 && consumed % MORSEL_ROWS == 0 {
                    partials.push(std::mem::replace(&mut current, Consumer::new(bound)));
                }
                consumed += 1;
                mem.cpu(pred_cycles);
                let mut pass = true;
                for (slot, op, lit) in &bound.preds {
                    pass &= op.matches(b.value(r, *slot).compare(lit)?);
                }
                if !pass {
                    continue;
                }
                kept += 1;
                vals.clear();
                for slot in 0..bound.touched.len() {
                    vals.push(b.value(r, slot));
                }
                mem.cpu(row_cycles + costs.vector_elem);
                current.feed(&vals)?;
            }
            batch_counts.push((b.len() as u64, kept));
        }
        partials.push(current);
        scratch.put_vals(vref, vals);
        mem.join_clocks();
        mem.set_active_core(0);
        for (rows_in, rows_out) in batch_counts {
            self.note_scan(rows_in, rows_out);
        }
        let stats = eph.stats();
        Ok((partials, stats))
    }

    /// The RM stage 0 of [`Self::run_stage0_rm`], but every delivery runs
    /// under `ctx`'s fault plan via
    /// [`EphemeralColumns::next_batch_resilient`]. Always returns the
    /// device stats — on error they carry the injected fault counts of
    /// the failed attempt into the degraded output.
    pub(crate) fn run_stage0_rm_resilient(
        &mut self,
        mem: &mut MemoryHierarchy,
        scratch: &mut Scratchpad,
        ctx: &mut FaultContext,
    ) -> (Result<Vec<Consumer<'q>>>, RmStats) {
        let bound = self.bound();
        let costs = mem.costs();
        let mut eph = EphemeralColumns::configure_verified(
            mem,
            RmConfig::prototype(),
            self.verified.geometry().clone(),
        );

        // Same batch fan-out and morsel-aligned partial rollover as the
        // plain RM stage; fault draws are indexed by delivery sequence, so
        // the injected faults — and thus the delivered content — are
        // identical for every core count. Error exits re-join the clocks
        // so the caller's accounting stays aligned (the scratch buffer is
        // dropped rather than pooled on that path — a lost allocation,
        // never an aliased one).
        mem.fork_clocks();
        let mut partials: Vec<Consumer<'q>> = Vec::new();
        let mut current = Consumer::new(bound);
        let row_cycles = current.row_cycles(&costs);
        let pred_cycles = costs.value_op * bound.preds.len() as u64;
        let mut consumed = 0usize;
        let (vref, mut vals) = scratch.take_vals();
        let mut batch_counts: Vec<(u64, u64)> = Vec::new();
        macro_rules! bail {
            ($e:expr) => {{
                mem.join_clocks();
                mem.set_active_core(0);
                for &(rows_in, rows_out) in &batch_counts {
                    self.note_scan(rows_in, rows_out);
                }
                return (Err($e), eph.stats());
            }};
        }
        loop {
            mem.set_active_core(earliest_core(mem));
            let b = match eph.next_batch_resilient(mem, &mut ctx.plan, &ctx.policy) {
                Ok(Some(b)) => b,
                Ok(None) => break,
                Err(e) => bail!(e),
            };
            let mut kept = 0u64;
            for r in 0..b.len() {
                if consumed > 0 && consumed % MORSEL_ROWS == 0 {
                    partials.push(std::mem::replace(&mut current, Consumer::new(bound)));
                }
                consumed += 1;
                mem.cpu(pred_cycles);
                let mut pass = true;
                for (slot, op, lit) in &bound.preds {
                    let cmp = match b.value(r, *slot).compare(lit) {
                        Ok(c) => c,
                        Err(e) => bail!(e),
                    };
                    pass &= op.matches(cmp);
                }
                if !pass {
                    continue;
                }
                kept += 1;
                vals.clear();
                for slot in 0..bound.touched.len() {
                    vals.push(b.value(r, slot));
                }
                mem.cpu(row_cycles + costs.vector_elem);
                if let Err(e) = current.feed(&vals) {
                    bail!(e);
                }
            }
            batch_counts.push((b.len() as u64, kept));
        }
        partials.push(current);
        scratch.put_vals(vref, vals);
        mem.join_clocks();
        mem.set_active_core(0);
        for (rows_in, rows_out) in batch_counts {
            self.note_scan(rows_in, rows_out);
        }
        let stats = eph.stats();
        (Ok(partials), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::bind::bind;
    use crate::catalog::Catalog;
    use crate::parser::parse;
    use colstore::ColTable;
    use fabric_sim::SimConfig;
    use fabric_types::{ColumnType, Schema};
    use rowstore::RowTable;

    fn setup() -> (MemoryHierarchy, Catalog) {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let schema = Schema::from_pairs(&[("id", ColumnType::I64), ("qty", ColumnType::F64)]);
        let mut rt = RowTable::create(&mut mem, schema.clone(), 64).unwrap();
        let mut ct = ColTable::create(&mut mem, schema, 64).unwrap();
        for i in 0..50i64 {
            let row = vec![Value::I64(i), Value::F64(i as f64)];
            rt.load(&mut mem, &row).unwrap();
            ct.load(&mut mem, &row).unwrap();
        }
        let mut c = Catalog::new();
        c.register("t", rt, ct);
        (mem, c)
    }

    #[test]
    fn dag_shape_and_stage_partition_follow_the_plan() {
        let (_mem, c) = setup();
        let entry = c.get("t").unwrap();

        let bound = bind(&c, &parse("SELECT id FROM t WHERE id < 5").unwrap()).unwrap();
        let v = analyze(entry, &bound, &RmConfig::prototype()).unwrap();
        let ex = QueryExecutor::new(&v, AccessPath::Row);
        assert_eq!(
            ex.stages(),
            vec![vec!["scan_row", "filter", "project"], vec!["merge"]],
            "streamable ops fuse into stage 0; merge breaks"
        );

        let bound = bind(&c, &parse("SELECT sum(qty) FROM t").unwrap()).unwrap();
        let v = analyze(entry, &bound, &RmConfig::prototype()).unwrap();
        let ex = QueryExecutor::new(&v, AccessPath::Rm);
        assert_eq!(
            ex.stages(),
            vec![vec!["scan_rm", "aggregate"], vec!["merge"]]
        );
    }

    #[test]
    fn stage0_records_per_operator_actuals() {
        let (mut mem, c) = setup();
        let entry = c.get("t").unwrap();
        let bound = bind(&c, &parse("SELECT id FROM t WHERE id < 5").unwrap()).unwrap();
        let v = analyze(entry, &bound, &RmConfig::prototype()).unwrap();
        let mut scratch = Scratchpad::new();
        scratch.begin_query();
        let mut ex = QueryExecutor::new(&v, AccessPath::Col);
        let partials = ex.run_stage0(&mut mem, entry, &mut scratch).unwrap();
        assert_eq!(partials.len(), 1, "50 rows fit one morsel");
        ex.record_metrics(mem.metrics_mut());
        let m = mem.metrics();
        assert_eq!(m.counter("query.op.scan_col.rows_in"), 50);
        assert_eq!(m.counter("query.op.scan_col.invocations"), 1);
        assert_eq!(m.counter("query.op.filter.rows_in"), 50);
        assert_eq!(m.counter("query.op.filter.rows_out"), 5);
        assert_eq!(m.counter("query.op.project.rows_out"), 5);
        assert_eq!(
            m.counter("query.op.merge.invocations"),
            0,
            "driver owns merge"
        );
        // The selection vectors went back to the pool for the next query.
        assert_eq!(scratch.allocs(), 2);
        scratch.begin_query();
        let mut ex = QueryExecutor::new(&v, AccessPath::Col);
        ex.run_stage0(&mut mem, entry, &mut scratch).unwrap();
        assert_eq!(scratch.allocs(), 2, "no new allocations on a warm pad");
        assert_eq!(scratch.reuses(), 2);
    }
}
