//! Operator DAG nodes and the shared consumption operator.
//!
//! A verified plan lowers to a small, fixed operator DAG (DESIGN.md §16):
//!
//! ```text
//! Scan(path) → [Filter] → Project | Aggregate  ──barrier──▶  Merge
//! └──────────── stage 0 (fused, per morsel) ─┘   └ stage 1 (core 0) ┘
//! ```
//!
//! Stage 0's operators are *streamable*: each morsel flows through all of
//! them in one fused kernel pass without materializing between nodes.
//! Merge is the pipeline breaker — it needs every partial, in morsel
//! order, so it forms its own stage. The node list exists so the
//! executor can attribute per-operator actuals ([`fabric_sim::OpStats`],
//! exported as `query.op.*`) and so EXPLAIN-style surfaces can render
//! the stage partition; operators are constructed only inside this crate
//! (lint rule `exec-internals`).

use crate::bind::{BoundQuery, OutputItem};
use crate::cost::AccessPath;
use fabric_sim::{MemoryHierarchy, OpStats};
use fabric_types::{FabricError, Result, Value, ValueAgg};
use std::collections::BTreeMap;

/// The operator vocabulary of the staged executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpKind {
    /// Path-specific morsel scan (the fused kernel's input end).
    Scan(AccessPath),
    /// Conjunctive predicate over scanned slots.
    Filter,
    /// Per-row expression evaluation into output rows.
    Project,
    /// Grouped/scalar aggregation into partial accumulators.
    Aggregate,
    /// Morsel-order partial merge + finalization (pipeline breaker).
    Merge,
}

impl OpKind {
    /// Metric segment for `query.op.<name>.*`.
    pub(crate) fn name(self) -> &'static str {
        match self {
            OpKind::Scan(AccessPath::Row) => "scan_row",
            OpKind::Scan(AccessPath::Col) => "scan_col",
            OpKind::Scan(AccessPath::Rm) => "scan_rm",
            OpKind::Filter => "filter",
            OpKind::Project => "project",
            OpKind::Aggregate => "aggregate",
            OpKind::Merge => "merge",
        }
    }

    /// Streamable operators fuse into stage 0; pipeline breakers start a
    /// new stage.
    pub(crate) fn streamable(self) -> bool {
        !matches!(self, OpKind::Merge)
    }
}

/// One node of the lowered DAG: its kind plus accumulated actuals.
#[derive(Debug)]
pub(crate) struct OpNode {
    pub(crate) kind: OpKind,
    pub(crate) stats: OpStats,
}

impl OpNode {
    pub(crate) fn new(kind: OpKind) -> Self {
        OpNode {
            kind,
            stats: OpStats::default(),
        }
    }
}

/// Deterministic morsel scheduling: the earliest-free core, ties broken
/// toward the lowest id. With one core this is always core 0 and the
/// stage-0 kernels reduce to the serial engine.
pub(crate) fn earliest_core(mem: &MemoryHierarchy) -> usize {
    (0..mem.num_cores())
        .min_by_key(|&i| (mem.core_now(i), i))
        .unwrap_or(0)
}

/// Shared consumption: either collects projected rows or maintains grouped
/// aggregates. One `Consumer` holds one morsel's partial result.
pub(crate) struct Consumer<'q> {
    bound: &'q BoundQuery,
    rows: Vec<Vec<Value>>,
    /// Grouped accumulators keyed by the rendered group key. A `BTreeMap`
    /// so iteration is key-ordered on every core count — group output
    /// order must never depend on hash iteration (rule
    /// `nondeterministic-core`).
    groups: BTreeMap<String, (Vec<Value>, Vec<ValueAgg>)>,
    aggregated: bool,
}

impl<'q> Consumer<'q> {
    pub(crate) fn new(bound: &'q BoundQuery) -> Self {
        Consumer {
            bound,
            rows: Vec::new(),
            groups: BTreeMap::new(),
            aggregated: bound.has_aggregates(),
        }
    }

    /// CPU cycles one fed row costs (charged by the caller's engine loop).
    pub(crate) fn row_cycles(&self, costs: &fabric_sim::hierarchy::OpCosts) -> u64 {
        let ops: u64 = self
            .bound
            .items
            .iter()
            .map(|i| match i {
                OutputItem::Agg(_, e) | OutputItem::Expr(e) => e.ops() + 1,
            })
            .sum();
        if self.aggregated {
            let hash = if self.bound.group_by.is_empty() {
                0
            } else {
                costs.hash_op
            };
            hash + costs.f64_op * ops
        } else {
            costs.value_op * ops
        }
    }

    /// Rows (or groups) this partial currently holds — the partial's
    /// contribution to the merge stage's `rows_in`.
    pub(crate) fn partial_len(&self) -> usize {
        if self.aggregated {
            self.groups.len()
        } else {
            self.rows.len()
        }
    }

    pub(crate) fn feed(&mut self, vals: &[Value]) -> Result<()> {
        if !self.aggregated {
            let mut out = Vec::with_capacity(self.bound.items.len());
            for item in &self.bound.items {
                match item {
                    OutputItem::Expr(e) => out.push(e.eval(vals)?),
                    OutputItem::Agg(..) => {
                        return Err(FabricError::Internal(
                            "aggregate item in non-aggregated plan".into(),
                        ))
                    }
                }
            }
            self.rows.push(out);
            return Ok(());
        }
        use std::fmt::Write as _;
        let mut key = String::new();
        for &slot in &self.bound.group_by {
            write!(key, "{}\u{1f}", vals[slot])
                .map_err(|e| FabricError::Internal(format!("group key formatting: {e}")))?;
        }
        let entry = self.groups.entry(key).or_insert_with(|| {
            let key_vals: Vec<Value> = self
                .bound
                .group_by
                .iter()
                .map(|&s| vals[s].clone())
                .collect();
            let accs: Vec<ValueAgg> = self
                .bound
                .items
                .iter()
                .filter_map(|i| match i {
                    OutputItem::Agg(f, _) => Some(ValueAgg::new(*f)),
                    OutputItem::Expr(_) => None,
                })
                .collect();
            (key_vals, accs)
        });
        let mut acc_i = 0;
        for item in &self.bound.items {
            if let OutputItem::Agg(_, e) = item {
                entry.1[acc_i].update(&e.eval(vals)?)?;
                acc_i += 1;
            }
        }
        Ok(())
    }

    /// Fold another partial consumer (a later morsel of the same plan)
    /// into this one. Projected morsels concatenate — the caller merges in
    /// morsel order, so the result is the scan order. Aggregated morsels
    /// merge their group accumulators pairwise ([`ValueAgg::merge`]); every
    /// group is independent, so the fold is deterministic regardless of
    /// merge order.
    fn merge(&mut self, mem: &mut MemoryHierarchy, other: Consumer<'q>) -> Result<()> {
        let costs = mem.costs();
        if !self.aggregated {
            mem.cpu(costs.value_op * other.rows.len() as u64);
            self.rows.extend(other.rows);
            return Ok(());
        }
        for (key, (key_vals, accs)) in other.groups {
            mem.cpu(costs.hash_op);
            match self.groups.entry(key) {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    for (mine, theirs) in e.get_mut().1.iter_mut().zip(&accs) {
                        mem.cpu(costs.f64_op);
                        mine.merge(theirs)?;
                    }
                }
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert((key_vals, accs));
                }
            }
        }
        Ok(())
    }

    fn finish(mut self) -> Result<Vec<Vec<Value>>> {
        if !self.aggregated {
            return Ok(self.rows);
        }
        // Scalar aggregation over zero rows still returns one row
        // (count = 0, sum = 0; min/max/avg error, as they have no value).
        if self.groups.is_empty() && self.bound.group_by.is_empty() {
            let accs: Vec<ValueAgg> = self
                .bound
                .items
                .iter()
                .filter_map(|i| match i {
                    OutputItem::Agg(f, _) => Some(ValueAgg::new(*f)),
                    OutputItem::Expr(_) => None,
                })
                .collect();
            self.groups.insert(String::new(), (Vec::new(), accs));
        }
        // BTreeMap already iterates in key order — the very order the old
        // post-collection sort produced.
        let keyed: Vec<(String, (Vec<Value>, Vec<ValueAgg>))> = self.groups.into_iter().collect();
        let mut out = Vec::with_capacity(keyed.len());
        for (_, (key_vals, accs)) in keyed {
            let mut row = Vec::with_capacity(self.bound.items.len());
            let mut acc_i = 0;
            for item in &self.bound.items {
                match item {
                    OutputItem::Expr(e) => {
                        // A grouping column: its value is in key_vals at the
                        // position of its slot within group_by.
                        let slot = match e {
                            fabric_types::Expr::Col(s) => *s,
                            other => {
                                return Err(FabricError::Internal(format!(
                                    "non-column expression `{other}` in grouped output"
                                )))
                            }
                        };
                        let pos = self
                            .bound
                            .group_by
                            .iter()
                            .position(|&g| g == slot)
                            .ok_or_else(|| {
                                FabricError::Internal(format!(
                                    "grouped output slot {slot} not in GROUP BY"
                                ))
                            })?;
                        row.push(key_vals[pos].clone());
                    }
                    OutputItem::Agg(..) => {
                        row.push(accs[acc_i].finish()?);
                        acc_i += 1;
                    }
                }
            }
            out.push(row);
        }
        Ok(out)
    }
}

/// Merge per-morsel partial consumers *in morsel order* on the active core
/// and produce the plan's output rows. The fold shape is fixed by the
/// morsel count (which depends only on the input size), never by the core
/// count — that is what makes N-core output bit-identical to 1-core even
/// for floating-point aggregates.
pub(crate) fn merge_partials<'q>(
    mem: &mut MemoryHierarchy,
    bound: &'q BoundQuery,
    partials: Vec<Consumer<'q>>,
) -> Result<Vec<Vec<Value>>> {
    let mut it = partials.into_iter();
    let mut acc = match it.next() {
        Some(first) => first,
        None => Consumer::new(bound),
    };
    for p in it {
        acc.merge(mem, p)?;
    }
    acc.finish()
}
