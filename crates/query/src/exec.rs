//! Plan execution over the three access paths.
//!
//! All paths share one consumption stage (expression evaluation or grouped
//! aggregation over slot tuples), so a query returns identical rows no
//! matter which path the optimizer picked — the paper's "one execution
//! engine" property (§III-B): the engine always assumes only relevant data
//! arrives.

use crate::analyze::{analyze, VerifiedQuery};
use crate::bind::{BoundQuery, OutputItem};
use crate::catalog::Catalog;
use crate::cost::{choose_path, AccessPath, PathCost};
use colstore::exec as colx;
use fabric_sim::MemoryHierarchy;
use fabric_types::{FabricError, Result, Value, ValueAgg};
use relmem::{EphemeralColumns, RmConfig};
use rowstore::volcano::{Filter, Operator, SeqScan};
use std::collections::HashMap;

/// The result of a query: rows plus how they were obtained.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    pub rows: Vec<Vec<Value>>,
    pub path: AccessPath,
    /// Simulated nanoseconds spent executing (excludes parse/bind).
    pub ns: f64,
    /// The optimizer's estimates (for EXPLAIN-style output).
    pub cost: PathCost,
}

/// Shared consumption: either collects projected rows or maintains grouped
/// aggregates.
struct Consumer<'q> {
    bound: &'q BoundQuery,
    rows: Vec<Vec<Value>>,
    groups: HashMap<String, (Vec<Value>, Vec<ValueAgg>)>,
    aggregated: bool,
}

impl<'q> Consumer<'q> {
    fn new(bound: &'q BoundQuery) -> Self {
        Consumer {
            bound,
            rows: Vec::new(),
            groups: HashMap::new(),
            aggregated: bound.has_aggregates(),
        }
    }

    /// CPU cycles one fed row costs (charged by the caller's engine loop).
    fn row_cycles(&self, costs: &fabric_sim::hierarchy::OpCosts) -> u64 {
        let ops: u64 = self
            .bound
            .items
            .iter()
            .map(|i| match i {
                OutputItem::Agg(_, e) | OutputItem::Expr(e) => e.ops() + 1,
            })
            .sum();
        if self.aggregated {
            let hash = if self.bound.group_by.is_empty() {
                0
            } else {
                costs.hash_op
            };
            hash + costs.f64_op * ops
        } else {
            costs.value_op * ops
        }
    }

    fn feed(&mut self, vals: &[Value]) -> Result<()> {
        if !self.aggregated {
            let mut out = Vec::with_capacity(self.bound.items.len());
            for item in &self.bound.items {
                match item {
                    OutputItem::Expr(e) => out.push(e.eval(vals)?),
                    OutputItem::Agg(..) => {
                        return Err(FabricError::Internal(
                            "aggregate item in non-aggregated plan".into(),
                        ))
                    }
                }
            }
            self.rows.push(out);
            return Ok(());
        }
        use std::fmt::Write as _;
        let mut key = String::new();
        for &slot in &self.bound.group_by {
            let _ = write!(key, "{}\u{1f}", vals[slot]);
        }
        let entry = self.groups.entry(key).or_insert_with(|| {
            let key_vals: Vec<Value> = self
                .bound
                .group_by
                .iter()
                .map(|&s| vals[s].clone())
                .collect();
            let accs: Vec<ValueAgg> = self
                .bound
                .items
                .iter()
                .filter_map(|i| match i {
                    OutputItem::Agg(f, _) => Some(ValueAgg::new(*f)),
                    OutputItem::Expr(_) => None,
                })
                .collect();
            (key_vals, accs)
        });
        let mut acc_i = 0;
        for item in &self.bound.items {
            if let OutputItem::Agg(_, e) = item {
                entry.1[acc_i].update(&e.eval(vals)?)?;
                acc_i += 1;
            }
        }
        Ok(())
    }

    fn finish(mut self) -> Result<Vec<Vec<Value>>> {
        if !self.aggregated {
            return Ok(self.rows);
        }
        // Scalar aggregation over zero rows still returns one row
        // (count = 0, sum = 0; min/max/avg error, as they have no value).
        if self.groups.is_empty() && self.bound.group_by.is_empty() {
            let accs: Vec<ValueAgg> = self
                .bound
                .items
                .iter()
                .filter_map(|i| match i {
                    OutputItem::Agg(f, _) => Some(ValueAgg::new(*f)),
                    OutputItem::Expr(_) => None,
                })
                .collect();
            self.groups.insert(String::new(), (Vec::new(), accs));
        }
        let mut keyed: Vec<(String, (Vec<Value>, Vec<ValueAgg>))> =
            self.groups.into_iter().collect();
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = Vec::with_capacity(keyed.len());
        for (_, (key_vals, accs)) in keyed {
            let mut row = Vec::with_capacity(self.bound.items.len());
            let mut acc_i = 0;
            for item in &self.bound.items {
                match item {
                    OutputItem::Expr(e) => {
                        // A grouping column: its value is in key_vals at the
                        // position of its slot within group_by.
                        let slot = match e {
                            fabric_types::Expr::Col(s) => *s,
                            other => {
                                return Err(FabricError::Internal(format!(
                                    "non-column expression `{other}` in grouped output"
                                )))
                            }
                        };
                        let pos = self
                            .bound
                            .group_by
                            .iter()
                            .position(|&g| g == slot)
                            .ok_or_else(|| {
                                FabricError::Internal(format!(
                                    "grouped output slot {slot} not in GROUP BY"
                                ))
                            })?;
                        row.push(key_vals[pos].clone());
                    }
                    OutputItem::Agg(..) => {
                        row.push(accs[acc_i].finish()?);
                        acc_i += 1;
                    }
                }
            }
            out.push(row);
        }
        Ok(out)
    }
}

/// Execute on the optimizer-chosen path.
///
/// The plan is verified ([`crate::analyze`]) before any path runs; a
/// malformed plan returns the analyzer's structured diagnostics as an
/// error rather than reaching an engine.
pub fn execute(
    mem: &mut MemoryHierarchy,
    catalog: &Catalog,
    bound: &BoundQuery,
) -> Result<QueryOutput> {
    let entry = catalog.get(&bound.table)?;
    let verified = analyze(entry, bound, &RmConfig::prototype())?;
    let (path, cost) = choose_path(mem.config(), &RmConfig::prototype(), entry, bound)?;
    execute_with_cost(mem, entry, &verified, path, cost)
}

/// Execute on an explicitly chosen path (engine comparisons / tests).
/// Verifies the plan exactly like [`execute`].
pub fn execute_on(
    mem: &mut MemoryHierarchy,
    catalog: &Catalog,
    bound: &BoundQuery,
    path: AccessPath,
) -> Result<QueryOutput> {
    let entry = catalog.get(&bound.table)?;
    let verified = analyze(entry, bound, &RmConfig::prototype())?;
    let (_, cost) = choose_path(mem.config(), &RmConfig::prototype(), entry, bound)?;
    execute_with_cost(mem, entry, &verified, path, cost)
}

fn execute_with_cost(
    mem: &mut MemoryHierarchy,
    entry: &crate::catalog::TableEntry,
    verified: &VerifiedQuery<'_>,
    path: AccessPath,
    cost: PathCost,
) -> Result<QueryOutput> {
    let bound = verified.bound();
    let t0 = mem.now();
    let mut rows = match path {
        AccessPath::Row => run_row(mem, entry, verified)?,
        AccessPath::Col => run_col(mem, entry, verified)?,
        AccessPath::Rm => run_rm(mem, verified)?,
    };
    if !bound.order_by.is_empty() {
        sort_rows(mem, &mut rows, &bound.order_by)?;
    }
    if let Some(limit) = bound.limit {
        rows.truncate(limit);
    }
    Ok(QueryOutput {
        rows,
        path,
        ns: mem.ns_since(t0),
        cost,
    })
}

/// Sort the result rows on the bound `(position, desc)` keys, charging an
/// n·log n comparison cost.
fn sort_rows(
    mem: &mut MemoryHierarchy,
    rows: &mut [Vec<Value>],
    keys: &[(usize, bool)],
) -> Result<()> {
    let costs = mem.costs();
    let n = rows.len() as u64;
    if n > 1 {
        let comparisons = n * (64 - n.leading_zeros() as u64);
        mem.cpu(comparisons * (costs.value_op * keys.len() as u64 + costs.branch_miss / 2));
    }
    let mut err = None;
    rows.sort_by(|a, b| {
        for &(pos, desc) in keys {
            match a[pos].compare(&b[pos]) {
                Ok(ord) => {
                    let ord = if desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                Err(e) => {
                    err.get_or_insert(e);
                    return std::cmp::Ordering::Equal;
                }
            }
        }
        std::cmp::Ordering::Equal
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn run_row(
    mem: &mut MemoryHierarchy,
    entry: &crate::catalog::TableEntry,
    verified: &VerifiedQuery<'_>,
) -> Result<Vec<Vec<Value>>> {
    let bound = verified.bound();
    let costs = mem.costs();
    let scan = SeqScan::new(&entry.rows, bound.touched.clone())?;
    let mut op: Box<dyn Operator> = if bound.preds.is_empty() {
        Box::new(scan)
    } else {
        Box::new(Filter::new(Box::new(scan), bound.preds.clone()))
    };
    let mut consumer = Consumer::new(bound);
    let row_cycles = consumer.row_cycles(&costs);
    let mut tuple = Vec::new();
    while op.next(mem, &mut tuple)? {
        mem.cpu(row_cycles);
        consumer.feed(&tuple)?;
    }
    consumer.finish()
}

fn run_col(
    mem: &mut MemoryHierarchy,
    entry: &crate::catalog::TableEntry,
    verified: &VerifiedQuery<'_>,
) -> Result<Vec<Vec<Value>>> {
    let bound = verified.bound();
    let table = entry
        .cols
        .as_ref()
        .ok_or_else(|| FabricError::Sql(format!("table `{}` has no columnar copy", bound.table)))?;
    let costs = mem.costs();

    // Column-at-a-time selection: group conjuncts by column, full scan for
    // the first, candidate passes after. Predicate slots are in range — the
    // analyzer checked them before this path was reachable.
    let sel: Option<Vec<u32>> = if bound.preds.is_empty() {
        None
    } else {
        let mut by_col: Vec<(usize, Vec<(fabric_types::CmpOp, Value)>)> = Vec::new();
        for (slot, op, v) in &bound.preds {
            let col = bound.touched[*slot];
            match by_col.iter_mut().find(|(c, _)| *c == col) {
                Some((_, list)) => list.push((*op, v.clone())),
                None => by_col.push((col, vec![(*op, v.clone())])),
            }
        }
        let mut it = by_col.into_iter();
        let (c0, preds0) = it
            .next()
            .ok_or_else(|| FabricError::Internal("empty predicate grouping".into()))?;
        let mut sv = colx::scan_filter_conj(mem, table, c0, &preds0)?;
        for (c, preds) in it {
            sv = colx::scan_filter_cand(mem, table, c, &preds, &sv)?;
        }
        Some(sv)
    };

    let mut consumer = Consumer::new(bound);
    let row_cycles = consumer.row_cycles(&costs);
    colx::for_each_lockstep(
        mem,
        table,
        &bound.touched,
        sel.as_deref(),
        |mem, _, vals| {
            mem.cpu(row_cycles);
            consumer.feed(vals)
        },
    )?;
    consumer.finish()
}

fn run_rm(mem: &mut MemoryHierarchy, verified: &VerifiedQuery<'_>) -> Result<Vec<Vec<Value>>> {
    let bound = verified.bound();
    let costs = mem.costs();
    // The geometry was admitted by the analyzer; configuration cannot fail.
    let mut eph = EphemeralColumns::configure_verified(
        mem,
        RmConfig::prototype(),
        verified.geometry().clone(),
    );

    let mut consumer = Consumer::new(bound);
    let row_cycles = consumer.row_cycles(&costs);
    let mut vals: Vec<Value> = Vec::with_capacity(bound.touched.len());
    while let Some(b) = eph.next_batch(mem) {
        'rows: for r in 0..b.len() {
            // CPU-side predicate over packed fields (projection-only RM).
            for (slot, op, lit) in &bound.preds {
                mem.cpu(costs.value_op);
                if !op.matches(b.value(r, *slot).compare(lit)?) {
                    mem.cpu(costs.branch_miss);
                    continue 'rows;
                }
            }
            vals.clear();
            for slot in 0..bound.touched.len() {
                vals.push(b.value(r, slot));
            }
            mem.cpu(row_cycles + costs.vector_elem);
            consumer.feed(&vals)?;
        }
    }
    consumer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::bind;
    use crate::parser::parse;
    use colstore::ColTable;
    use fabric_sim::SimConfig;
    use fabric_types::{ColumnType, Schema};
    use rowstore::RowTable;

    /// 200 rows: id i64, grp char(1) A/B, qty f64 = id, d date = id.
    fn setup() -> (MemoryHierarchy, Catalog) {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let schema = Schema::from_pairs(&[
            ("id", ColumnType::I64),
            ("grp", ColumnType::FixedStr(1)),
            ("qty", ColumnType::F64),
            ("d", ColumnType::Date),
        ]);
        let mut rt = RowTable::create(&mut mem, schema.clone(), 256).unwrap();
        let mut ct = ColTable::create(&mut mem, schema, 256).unwrap();
        for i in 0..200i64 {
            let row = vec![
                Value::I64(i),
                Value::Str(if i % 2 == 0 { "A" } else { "B" }.into()),
                Value::F64(i as f64),
                Value::Date(i as u32),
            ];
            rt.load(&mut mem, &row).unwrap();
            ct.load(&mut mem, &row).unwrap();
        }
        let mut c = Catalog::new();
        c.register("t", rt, ct);
        (mem, c)
    }

    fn all_paths(mem: &mut MemoryHierarchy, c: &Catalog, sql: &str) -> Vec<QueryOutput> {
        let bound = bind(c, &parse(sql).unwrap()).unwrap();
        [AccessPath::Row, AccessPath::Col, AccessPath::Rm]
            .into_iter()
            .map(|p| execute_on(mem, c, &bound, p).unwrap())
            .collect()
    }

    #[test]
    fn projection_identical_on_all_paths() {
        let (mut mem, c) = setup();
        let outs = all_paths(&mut mem, &c, "SELECT id, qty * 2 FROM t WHERE id < 5");
        for o in &outs {
            assert_eq!(o.rows.len(), 5);
            assert_eq!(o.rows[3], vec![Value::I64(3), Value::F64(6.0)]);
        }
        assert_eq!(outs[0].rows, outs[1].rows);
        assert_eq!(outs[0].rows, outs[2].rows);
    }

    #[test]
    fn grouped_aggregation_identical_on_all_paths() {
        let (mut mem, c) = setup();
        let outs = all_paths(
            &mut mem,
            &c,
            "SELECT grp, count(*), sum(qty), avg(qty) FROM t WHERE id < 100 GROUP BY grp",
        );
        for o in &outs {
            assert_eq!(o.rows.len(), 2);
            // Group A: even ids 0..100 -> 50 rows, sum 2450.
            assert_eq!(o.rows[0][0], Value::Str("A".into()));
            assert_eq!(o.rows[0][1], Value::I64(50));
            assert_eq!(o.rows[0][2], Value::F64(2450.0));
            assert_eq!(o.rows[0][3], Value::F64(49.0));
        }
        assert_eq!(outs[0].rows, outs[1].rows);
        assert_eq!(outs[0].rows, outs[2].rows);
    }

    #[test]
    fn scalar_aggregates_and_date_predicates() {
        let (mut mem, c) = setup();
        let outs = all_paths(
            &mut mem,
            &c,
            "SELECT min(qty), max(qty), count(*) FROM t WHERE d >= 50 AND d < 60",
        );
        for o in &outs {
            assert_eq!(
                o.rows,
                vec![vec![Value::F64(50.0), Value::F64(59.0), Value::I64(10)]]
            );
        }
    }

    #[test]
    fn optimizer_path_runs_and_reports() {
        let (mut mem, c) = setup();
        let out = crate::run(&mut mem, &c, "SELECT sum(qty) FROM t").unwrap();
        assert_eq!(out.rows[0][0], Value::F64((0..200).map(|i| i as f64).sum()));
        assert!(out.ns > 0.0);
        assert!(out.cost.rm_ns > 0.0);
    }

    #[test]
    fn col_path_unavailable_without_columnar_copy() {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let schema = Schema::from_pairs(&[("x", ColumnType::I64)]);
        let mut rt = RowTable::create(&mut mem, schema, 4).unwrap();
        rt.load(&mut mem, &[Value::I64(1)]).unwrap();
        let mut c = Catalog::new();
        c.register_rows("u", rt);
        let bound = bind(&c, &parse("SELECT x FROM u").unwrap()).unwrap();
        assert!(execute_on(&mut mem, &c, &bound, AccessPath::Col).is_err());
        // But Row and Rm work fine.
        let out = execute_on(&mut mem, &c, &bound, AccessPath::Rm).unwrap();
        assert_eq!(out.rows, vec![vec![Value::I64(1)]]);
    }

    #[test]
    fn empty_result_sets() {
        let (mut mem, c) = setup();
        let outs = all_paths(&mut mem, &c, "SELECT id FROM t WHERE id < 0");
        for o in &outs {
            assert!(o.rows.is_empty());
        }
        let outs = all_paths(&mut mem, &c, "SELECT count(*) FROM t WHERE id < 0");
        for o in &outs {
            assert_eq!(o.rows, vec![vec![Value::I64(0)]]);
        }
    }

    #[test]
    fn order_by_and_limit_apply_on_every_path() {
        let (mut mem, c) = setup();
        let outs = all_paths(
            &mut mem,
            &c,
            "SELECT id, qty FROM t WHERE id < 20 ORDER BY qty DESC LIMIT 3",
        );
        for o in &outs {
            assert_eq!(o.rows.len(), 3);
            assert_eq!(o.rows[0][0], Value::I64(19));
            assert_eq!(o.rows[2][0], Value::I64(17));
        }
        // ORDER BY position and grouped output.
        let outs = all_paths(
            &mut mem,
            &c,
            "SELECT grp, sum(qty) FROM t GROUP BY grp ORDER BY 2 DESC LIMIT 1",
        );
        for o in &outs {
            assert_eq!(o.rows.len(), 1);
            assert_eq!(o.rows[0][0], Value::Str("B".into())); // odd ids sum higher
        }
    }

    #[test]
    fn order_by_validation_errors() {
        let (_, c) = setup();
        assert!(bind(&c, &parse("SELECT id FROM t ORDER BY 2").unwrap()).is_err());
        assert!(bind(&c, &parse("SELECT id FROM t ORDER BY qty").unwrap()).is_err());
        assert!(bind(&c, &parse("SELECT id, qty FROM t ORDER BY qty").unwrap()).is_ok());
    }

    #[test]
    fn string_equality_predicates() {
        let (mut mem, c) = setup();
        let outs = all_paths(&mut mem, &c, "SELECT count(*) FROM t WHERE grp = 'B'");
        for o in &outs {
            assert_eq!(o.rows, vec![vec![Value::I64(100)]]);
        }
    }
}
