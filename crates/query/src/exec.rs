//! Plan execution over the three access paths.
//!
//! All paths share one consumption stage (expression evaluation or grouped
//! aggregation over slot tuples), so a query returns identical rows no
//! matter which path the optimizer picked — the paper's "one execution
//! engine" property (§III-B): the engine always assumes only relevant data
//! arrives.

use crate::analyze::{analyze, VerifiedQuery};
use crate::bind::{BoundQuery, OutputItem};
use crate::catalog::Catalog;
use crate::cost::{choose_path, AccessPath, PathCost};
use colstore::exec as colx;
use fabric_sim::{
    Category, CircuitBreaker, FaultConfig, FaultPlan, MemoryHierarchy, RecoveryPolicy,
};
use fabric_types::{FabricError, Result, Value, ValueAgg};
use relmem::{EphemeralColumns, RmConfig, RmStats};
use rowstore::volcano::{Filter, Operator, SeqScan};
use std::collections::HashMap;

/// One measured execution phase — a plan node's actuals, captured whether
/// or not a trace recorder is attached (the bookkeeping is host-side and
/// never advances simulated time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Span name, matching the trace event (`query::scan::rm`, …).
    pub name: &'static str,
    /// Simulated cycles the phase took.
    pub cycles: u64,
    /// Payload bytes read through the hierarchy during the phase.
    pub bytes_read: u64,
    /// Cycles the CPU spent stalled on memory during the phase.
    pub stall_cycles: u64,
    /// Whether the phase ended in an error (a faulted RM attempt stays in
    /// the profile of the degraded query that absorbed it).
    pub failed: bool,
}

/// The result of a query: rows plus how they were obtained.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    pub rows: Vec<Vec<Value>>,
    pub path: AccessPath,
    /// Simulated nanoseconds spent executing (excludes parse/bind).
    pub ns: f64,
    /// The optimizer's estimates (for EXPLAIN-style output).
    pub cost: PathCost,
    /// RM device statistics, when the RM path ran (even if it then
    /// degraded — the failed attempt's injected-fault counters are here).
    pub rm_stats: Option<RmStats>,
    /// `Some(original_path)` when the executor transparently re-planned
    /// onto `path` after the original faulted past its retry budget.
    pub degraded_from: Option<AccessPath>,
    /// Per-phase actuals (scan, sort, failed attempts) in execution order —
    /// the plan-node breakdown `EXPLAIN ANALYZE` renders.
    pub profile: Vec<PhaseProfile>,
}

/// Fault-handling state threaded through [`execute_resilient`] across
/// queries: the seeded plan, the recovery budgets, and the RM engine's
/// health. Hold one per simulated "machine" so the circuit breaker sees
/// consecutive failures across queries, not just within one.
pub struct FaultContext {
    /// The seeded fault plan every RM delivery draws from.
    pub plan: FaultPlan,
    /// Retry/backoff/breaker budgets.
    pub policy: RecoveryPolicy,
    rm_health: CircuitBreaker,
    /// Queries that degraded onto a software path after an RM fault.
    pub fallbacks: u64,
    /// Queries that skipped the RM path because its breaker was open.
    pub breaker_skips: u64,
}

impl FaultContext {
    pub fn new(cfg: FaultConfig, policy: RecoveryPolicy) -> Self {
        FaultContext {
            plan: FaultPlan::new(cfg),
            rm_health: CircuitBreaker::new(&policy),
            policy,
            fallbacks: 0,
            breaker_skips: 0,
        }
    }

    /// A context whose plan injects nothing (useful as a baseline).
    pub fn quiet() -> Self {
        FaultContext::new(FaultConfig::quiet(0), RecoveryPolicy::default())
    }

    /// Health of the RM engine as seen by this context.
    pub fn rm_health(&self) -> &CircuitBreaker {
        &self.rm_health
    }
}

/// Shared consumption: either collects projected rows or maintains grouped
/// aggregates.
struct Consumer<'q> {
    bound: &'q BoundQuery,
    rows: Vec<Vec<Value>>,
    groups: HashMap<String, (Vec<Value>, Vec<ValueAgg>)>,
    aggregated: bool,
}

impl<'q> Consumer<'q> {
    fn new(bound: &'q BoundQuery) -> Self {
        Consumer {
            bound,
            rows: Vec::new(),
            groups: HashMap::new(),
            aggregated: bound.has_aggregates(),
        }
    }

    /// CPU cycles one fed row costs (charged by the caller's engine loop).
    fn row_cycles(&self, costs: &fabric_sim::hierarchy::OpCosts) -> u64 {
        let ops: u64 = self
            .bound
            .items
            .iter()
            .map(|i| match i {
                OutputItem::Agg(_, e) | OutputItem::Expr(e) => e.ops() + 1,
            })
            .sum();
        if self.aggregated {
            let hash = if self.bound.group_by.is_empty() {
                0
            } else {
                costs.hash_op
            };
            hash + costs.f64_op * ops
        } else {
            costs.value_op * ops
        }
    }

    fn feed(&mut self, vals: &[Value]) -> Result<()> {
        if !self.aggregated {
            let mut out = Vec::with_capacity(self.bound.items.len());
            for item in &self.bound.items {
                match item {
                    OutputItem::Expr(e) => out.push(e.eval(vals)?),
                    OutputItem::Agg(..) => {
                        return Err(FabricError::Internal(
                            "aggregate item in non-aggregated plan".into(),
                        ))
                    }
                }
            }
            self.rows.push(out);
            return Ok(());
        }
        use std::fmt::Write as _;
        let mut key = String::new();
        for &slot in &self.bound.group_by {
            write!(key, "{}\u{1f}", vals[slot])
                .map_err(|e| FabricError::Internal(format!("group key formatting: {e}")))?;
        }
        let entry = self.groups.entry(key).or_insert_with(|| {
            let key_vals: Vec<Value> = self
                .bound
                .group_by
                .iter()
                .map(|&s| vals[s].clone())
                .collect();
            let accs: Vec<ValueAgg> = self
                .bound
                .items
                .iter()
                .filter_map(|i| match i {
                    OutputItem::Agg(f, _) => Some(ValueAgg::new(*f)),
                    OutputItem::Expr(_) => None,
                })
                .collect();
            (key_vals, accs)
        });
        let mut acc_i = 0;
        for item in &self.bound.items {
            if let OutputItem::Agg(_, e) = item {
                entry.1[acc_i].update(&e.eval(vals)?)?;
                acc_i += 1;
            }
        }
        Ok(())
    }

    fn finish(mut self) -> Result<Vec<Vec<Value>>> {
        if !self.aggregated {
            return Ok(self.rows);
        }
        // Scalar aggregation over zero rows still returns one row
        // (count = 0, sum = 0; min/max/avg error, as they have no value).
        if self.groups.is_empty() && self.bound.group_by.is_empty() {
            let accs: Vec<ValueAgg> = self
                .bound
                .items
                .iter()
                .filter_map(|i| match i {
                    OutputItem::Agg(f, _) => Some(ValueAgg::new(*f)),
                    OutputItem::Expr(_) => None,
                })
                .collect();
            self.groups.insert(String::new(), (Vec::new(), accs));
        }
        let mut keyed: Vec<(String, (Vec<Value>, Vec<ValueAgg>))> =
            self.groups.into_iter().collect();
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = Vec::with_capacity(keyed.len());
        for (_, (key_vals, accs)) in keyed {
            let mut row = Vec::with_capacity(self.bound.items.len());
            let mut acc_i = 0;
            for item in &self.bound.items {
                match item {
                    OutputItem::Expr(e) => {
                        // A grouping column: its value is in key_vals at the
                        // position of its slot within group_by.
                        let slot = match e {
                            fabric_types::Expr::Col(s) => *s,
                            other => {
                                return Err(FabricError::Internal(format!(
                                    "non-column expression `{other}` in grouped output"
                                )))
                            }
                        };
                        let pos = self
                            .bound
                            .group_by
                            .iter()
                            .position(|&g| g == slot)
                            .ok_or_else(|| {
                                FabricError::Internal(format!(
                                    "grouped output slot {slot} not in GROUP BY"
                                ))
                            })?;
                        row.push(key_vals[pos].clone());
                    }
                    OutputItem::Agg(..) => {
                        row.push(accs[acc_i].finish()?);
                        acc_i += 1;
                    }
                }
            }
            out.push(row);
        }
        Ok(out)
    }
}

/// Execute on the optimizer-chosen path.
///
/// The plan is verified ([`crate::analyze`]) before any path runs; a
/// malformed plan returns the analyzer's structured diagnostics as an
/// error rather than reaching an engine.
pub fn execute(
    mem: &mut MemoryHierarchy,
    catalog: &Catalog,
    bound: &BoundQuery,
) -> Result<QueryOutput> {
    let entry = catalog.get(&bound.table)?;
    let verified = analyze(entry, bound, &RmConfig::prototype())?;
    let (path, cost) = choose_path(mem.config(), &RmConfig::prototype(), entry, bound)?;
    execute_with_cost(mem, entry, &verified, path, cost)
}

/// Execute on an explicitly chosen path (engine comparisons / tests).
/// Verifies the plan exactly like [`execute`].
pub fn execute_on(
    mem: &mut MemoryHierarchy,
    catalog: &Catalog,
    bound: &BoundQuery,
    path: AccessPath,
) -> Result<QueryOutput> {
    let entry = catalog.get(&bound.table)?;
    let verified = analyze(entry, bound, &RmConfig::prototype())?;
    let (_, cost) = choose_path(mem.config(), &RmConfig::prototype(), entry, bound)?;
    execute_with_cost(mem, entry, &verified, path, cost)
}

/// The trace/profile span name of a path's scan phase.
fn scan_span(path: AccessPath) -> &'static str {
    match path {
        AccessPath::Row => "query::scan::row",
        AccessPath::Col => "query::scan::col",
        AccessPath::Rm => "query::scan::rm",
    }
}

/// Run `f` as a named execution phase: emit a balanced trace span (with
/// cycle/byte/stall attribution as end args) and append the measured
/// actuals to `profile`. The phase is recorded even when `f` errors — a
/// failed RM attempt is part of the degraded query's story.
fn profiled<R>(
    mem: &mut MemoryHierarchy,
    name: &'static str,
    profile: &mut Vec<PhaseProfile>,
    f: impl FnOnce(&mut MemoryHierarchy) -> Result<R>,
) -> Result<R> {
    let before = mem.stats();
    let t = mem.now();
    mem.trace_begin(name, Category::Query);
    let res = f(mem);
    let d = mem.stats().delta_since(&before);
    let cycles = mem.now() - t;
    mem.trace_end(
        name,
        Category::Query,
        &[
            ("cycles", cycles),
            ("bytes_read", d.bytes_read),
            ("stall_cycles", d.stall_cycles),
            ("failed", u64::from(res.is_err())),
        ],
    );
    profile.push(PhaseProfile {
        name,
        cycles,
        bytes_read: d.bytes_read,
        stall_cycles: d.stall_cycles,
        failed: res.is_err(),
    });
    res
}

fn execute_with_cost(
    mem: &mut MemoryHierarchy,
    entry: &crate::catalog::TableEntry,
    verified: &VerifiedQuery<'_>,
    path: AccessPath,
    cost: PathCost,
) -> Result<QueryOutput> {
    let t0 = mem.now();
    mem.trace_begin("query::exec", Category::Query);
    let mut profile = Vec::new();
    let run = match path {
        AccessPath::Row => profiled(mem, scan_span(path), &mut profile, |m| {
            run_row(m, entry, verified)
        })
        .map(|rows| (rows, None)),
        AccessPath::Col => profiled(mem, scan_span(path), &mut profile, |m| {
            run_col(m, entry, verified)
        })
        .map(|rows| (rows, None)),
        AccessPath::Rm => profiled(mem, scan_span(path), &mut profile, |m| run_rm(m, verified))
            .map(|(rows, stats)| (rows, Some(stats))),
    };
    let (rows, rm_stats) = match run {
        Ok(v) => v,
        Err(e) => {
            mem.trace_end("query::exec", Category::Query, &[("failed", 1)]);
            return Err(e);
        }
    };
    finish_output(mem, verified, rows, path, cost, t0, rm_stats, None, profile)
}

/// Shared tail of every execution: ORDER BY / LIMIT post-processing,
/// metrics accounting, and output assembly. `t0` is when the *first*
/// attempt started, so a degraded run's `ns` includes the time burnt on
/// the failed RM path. Closes the `query::exec` span its caller opened.
#[allow(clippy::too_many_arguments)]
fn finish_output(
    mem: &mut MemoryHierarchy,
    verified: &VerifiedQuery<'_>,
    mut rows: Vec<Vec<Value>>,
    path: AccessPath,
    cost: PathCost,
    t0: fabric_sim::Cycles,
    rm_stats: Option<RmStats>,
    degraded_from: Option<AccessPath>,
    mut profile: Vec<PhaseProfile>,
) -> Result<QueryOutput> {
    let bound = verified.bound();
    if !bound.order_by.is_empty() {
        let sorted = profiled(mem, "query::post::sort", &mut profile, |m| {
            sort_rows(m, &mut rows, &bound.order_by)
        });
        if let Err(e) = sorted {
            mem.trace_end("query::exec", Category::Query, &[("failed", 1)]);
            return Err(e);
        }
    }
    if let Some(limit) = bound.limit {
        rows.truncate(limit);
    }
    let total = mem.now() - t0;
    mem.trace_end(
        "query::exec",
        Category::Query,
        &[
            ("rows", rows.len() as u64),
            ("cycles", total),
            ("degraded", u64::from(degraded_from.is_some())),
        ],
    );
    let path_key = match path {
        AccessPath::Row => "query.path.row",
        AccessPath::Col => "query.path.col",
        AccessPath::Rm => "query.path.rm",
    };
    let metrics = mem.metrics_mut();
    metrics.counter_add("query.executions", 1);
    metrics.counter_add(path_key, 1);
    metrics.counter_add("query.rows_out", rows.len() as u64);
    if degraded_from.is_some() {
        metrics.counter_add("query.degraded", 1);
    }
    metrics.observe("query.exec_cycles", total);
    if let Some(rm) = &rm_stats {
        rm.record_into(metrics, "query.rm");
    }
    Ok(QueryOutput {
        rows,
        path,
        ns: mem.ns_since(t0),
        cost,
        rm_stats,
        degraded_from,
        profile,
    })
}

/// Is this an RM delivery fault the executor may transparently absorb by
/// re-planning? Anything else (plan errors, type errors) must propagate.
fn degradable(e: &FabricError) -> bool {
    matches!(
        e,
        FabricError::DeviceTimeout { .. } | FabricError::CorruptBatch { .. }
    )
}

/// The software path a faulted RM query re-plans onto: COL when a
/// columnar copy exists (it was priced, so `col_ns` is `Some`), else ROW.
fn fallback_path(cost: &PathCost) -> AccessPath {
    if cost.col_ns.is_some() {
        AccessPath::Col
    } else {
        AccessPath::Row
    }
}

/// Fault-aware execution: like [`execute`], but RM-path queries run under
/// `ctx`'s seeded fault plan with bounded retries, and — the headline —
/// when the device faults past its retry budget (or its circuit breaker
/// is open), the executor transparently re-plans onto the ROW/COL
/// software path and returns the identical answer. The degradation is
/// recorded in [`QueryOutput::degraded_from`] and counted in `ctx`.
pub fn execute_resilient(
    mem: &mut MemoryHierarchy,
    catalog: &Catalog,
    bound: &BoundQuery,
    ctx: &mut FaultContext,
) -> Result<QueryOutput> {
    let entry = catalog.get(&bound.table)?;
    let verified = analyze(entry, bound, &RmConfig::prototype())?;
    let (path, cost) = choose_path(mem.config(), &RmConfig::prototype(), entry, bound)?;
    if path != AccessPath::Rm {
        return execute_with_cost(mem, entry, &verified, path, cost);
    }

    let t0 = mem.now();
    mem.trace_begin("query::exec", Category::Query);
    let mut profile = Vec::new();
    if !ctx.rm_health.allow() {
        // Breaker open: don't even try the device; fail fast onto software.
        ctx.breaker_skips += 1;
        mem.trace_instant("query.breaker_skip", Category::Fault, &[]);
        let fb = fallback_path(&cost);
        let run = profiled(mem, scan_span(fb), &mut profile, |m| match fb {
            AccessPath::Col => run_col(m, entry, &verified),
            _ => run_row(m, entry, &verified),
        });
        let rows = match run {
            Ok(rows) => rows,
            Err(e) => {
                mem.trace_end("query::exec", Category::Query, &[("failed", 1)]);
                return Err(e);
            }
        };
        return finish_output(
            mem,
            &verified,
            rows,
            fb,
            cost,
            t0,
            None,
            Some(AccessPath::Rm),
            profile,
        );
    }

    // The resilient RM loop always reports device stats, so it cannot run
    // under `profiled` directly — measure around it by hand.
    let before = mem.stats();
    let t_rm = mem.now();
    mem.trace_begin(scan_span(AccessPath::Rm), Category::Query);
    let (res, stats) = run_rm_resilient(mem, &verified, ctx);
    let d = mem.stats().delta_since(&before);
    mem.trace_end(
        scan_span(AccessPath::Rm),
        Category::Query,
        &[
            ("cycles", mem.now() - t_rm),
            ("bytes_read", d.bytes_read),
            ("stall_cycles", d.stall_cycles),
            ("failed", u64::from(res.is_err())),
        ],
    );
    profile.push(PhaseProfile {
        name: scan_span(AccessPath::Rm),
        cycles: mem.now() - t_rm,
        bytes_read: d.bytes_read,
        stall_cycles: d.stall_cycles,
        failed: res.is_err(),
    });

    match (res, stats) {
        (Ok(rows), stats) => {
            ctx.rm_health.record_success();
            finish_output(
                mem,
                &verified,
                rows,
                AccessPath::Rm,
                cost,
                t0,
                Some(stats),
                None,
                profile,
            )
        }
        (Err(e), stats) if degradable(&e) => {
            // The device is misbehaving past its retry budget: re-plan
            // onto software. `t0` stays put — the wasted RM time is real.
            ctx.rm_health.record_failure();
            ctx.fallbacks += 1;
            let fb = fallback_path(&cost);
            mem.trace_instant(
                "query.degraded",
                Category::Fault,
                &[("to_col", u64::from(fb == AccessPath::Col))],
            );
            let run = profiled(mem, scan_span(fb), &mut profile, |m| match fb {
                AccessPath::Col => run_col(m, entry, &verified),
                _ => run_row(m, entry, &verified),
            });
            let rows = match run {
                Ok(rows) => rows,
                Err(e) => {
                    mem.trace_end("query::exec", Category::Query, &[("failed", 1)]);
                    return Err(e);
                }
            };
            finish_output(
                mem,
                &verified,
                rows,
                fb,
                cost,
                t0,
                Some(stats),
                Some(AccessPath::Rm),
                profile,
            )
        }
        (Err(e), _) => {
            mem.trace_end("query::exec", Category::Query, &[("failed", 1)]);
            Err(e)
        }
    }
}

/// Sort the result rows on the bound `(position, desc)` keys, charging an
/// n·log n comparison cost.
fn sort_rows(
    mem: &mut MemoryHierarchy,
    rows: &mut [Vec<Value>],
    keys: &[(usize, bool)],
) -> Result<()> {
    let costs = mem.costs();
    let n = rows.len() as u64;
    if n > 1 {
        let comparisons = n * (64 - n.leading_zeros() as u64);
        mem.cpu(comparisons * (costs.value_op * keys.len() as u64 + costs.branch_miss / 2));
    }
    let mut err = None;
    rows.sort_by(|a, b| {
        for &(pos, desc) in keys {
            match a[pos].compare(&b[pos]) {
                Ok(ord) => {
                    let ord = if desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                Err(e) => {
                    err.get_or_insert(e);
                    return std::cmp::Ordering::Equal;
                }
            }
        }
        std::cmp::Ordering::Equal
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn run_row(
    mem: &mut MemoryHierarchy,
    entry: &crate::catalog::TableEntry,
    verified: &VerifiedQuery<'_>,
) -> Result<Vec<Vec<Value>>> {
    let bound = verified.bound();
    let costs = mem.costs();
    let scan = SeqScan::new(&entry.rows, bound.touched.clone())?;
    let mut op: Box<dyn Operator> = if bound.preds.is_empty() {
        Box::new(scan)
    } else {
        Box::new(Filter::new(Box::new(scan), bound.preds.clone()))
    };
    let mut consumer = Consumer::new(bound);
    let row_cycles = consumer.row_cycles(&costs);
    let mut tuple = Vec::new();
    while op.next(mem, &mut tuple)? {
        mem.cpu(row_cycles);
        consumer.feed(&tuple)?;
    }
    consumer.finish()
}

fn run_col(
    mem: &mut MemoryHierarchy,
    entry: &crate::catalog::TableEntry,
    verified: &VerifiedQuery<'_>,
) -> Result<Vec<Vec<Value>>> {
    let bound = verified.bound();
    let table = entry
        .cols
        .as_ref()
        .ok_or_else(|| FabricError::Sql(format!("table `{}` has no columnar copy", bound.table)))?;
    let costs = mem.costs();

    // Column-at-a-time selection: group conjuncts by column, full scan for
    // the first, candidate passes after. Predicate slots are in range — the
    // analyzer checked them before this path was reachable.
    let sel: Option<Vec<u32>> = if bound.preds.is_empty() {
        None
    } else {
        let mut by_col: Vec<(usize, Vec<(fabric_types::CmpOp, Value)>)> = Vec::new();
        for (slot, op, v) in &bound.preds {
            let col = bound.touched[*slot];
            match by_col.iter_mut().find(|(c, _)| *c == col) {
                Some((_, list)) => list.push((*op, v.clone())),
                None => by_col.push((col, vec![(*op, v.clone())])),
            }
        }
        let mut it = by_col.into_iter();
        let (c0, preds0) = it
            .next()
            .ok_or_else(|| FabricError::Internal("empty predicate grouping".into()))?;
        let mut sv = colx::scan_filter_conj(mem, table, c0, &preds0)?;
        for (c, preds) in it {
            sv = colx::scan_filter_cand(mem, table, c, &preds, &sv)?;
        }
        Some(sv)
    };

    let mut consumer = Consumer::new(bound);
    let row_cycles = consumer.row_cycles(&costs);
    colx::for_each_lockstep(
        mem,
        table,
        &bound.touched,
        sel.as_deref(),
        |mem, _, vals| {
            mem.cpu(row_cycles);
            consumer.feed(vals)
        },
    )?;
    consumer.finish()
}

fn run_rm(
    mem: &mut MemoryHierarchy,
    verified: &VerifiedQuery<'_>,
) -> Result<(Vec<Vec<Value>>, RmStats)> {
    let bound = verified.bound();
    let costs = mem.costs();
    // The geometry was admitted by the analyzer; configuration cannot fail.
    let mut eph = EphemeralColumns::configure_verified(
        mem,
        RmConfig::prototype(),
        verified.geometry().clone(),
    );

    let mut consumer = Consumer::new(bound);
    let row_cycles = consumer.row_cycles(&costs);
    let mut vals: Vec<Value> = Vec::with_capacity(bound.touched.len());
    while let Some(b) = eph.next_batch(mem) {
        'rows: for r in 0..b.len() {
            // CPU-side predicate over packed fields (projection-only RM).
            for (slot, op, lit) in &bound.preds {
                mem.cpu(costs.value_op);
                if !op.matches(b.value(r, *slot).compare(lit)?) {
                    mem.cpu(costs.branch_miss);
                    continue 'rows;
                }
            }
            vals.clear();
            for slot in 0..bound.touched.len() {
                vals.push(b.value(r, slot));
            }
            mem.cpu(row_cycles + costs.vector_elem);
            consumer.feed(&vals)?;
        }
    }
    let stats = eph.stats();
    Ok((consumer.finish()?, stats))
}

/// The RM consumption loop of [`run_rm`], but every delivery runs under
/// `ctx`'s fault plan via [`EphemeralColumns::next_batch_resilient`].
/// Always returns the device stats — on error they carry the injected
/// fault counts of the failed attempt into the degraded [`QueryOutput`].
fn run_rm_resilient(
    mem: &mut MemoryHierarchy,
    verified: &VerifiedQuery<'_>,
    ctx: &mut FaultContext,
) -> (Result<Vec<Vec<Value>>>, RmStats) {
    let bound = verified.bound();
    let costs = mem.costs();
    let mut eph = EphemeralColumns::configure_verified(
        mem,
        RmConfig::prototype(),
        verified.geometry().clone(),
    );

    let mut consumer = Consumer::new(bound);
    let row_cycles = consumer.row_cycles(&costs);
    let mut vals: Vec<Value> = Vec::with_capacity(bound.touched.len());
    loop {
        let b = match eph.next_batch_resilient(mem, &mut ctx.plan, &ctx.policy) {
            Ok(Some(b)) => b,
            Ok(None) => break,
            Err(e) => return (Err(e), eph.stats()),
        };
        'rows: for r in 0..b.len() {
            for (slot, op, lit) in &bound.preds {
                mem.cpu(costs.value_op);
                let cmp = match b.value(r, *slot).compare(lit) {
                    Ok(c) => c,
                    Err(e) => return (Err(e), eph.stats()),
                };
                if !op.matches(cmp) {
                    mem.cpu(costs.branch_miss);
                    continue 'rows;
                }
            }
            vals.clear();
            for slot in 0..bound.touched.len() {
                vals.push(b.value(r, slot));
            }
            mem.cpu(row_cycles + costs.vector_elem);
            if let Err(e) = consumer.feed(&vals) {
                return (Err(e), eph.stats());
            }
        }
    }
    let stats = eph.stats();
    (consumer.finish(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::bind;
    use crate::parser::parse;
    use colstore::ColTable;
    use fabric_sim::SimConfig;
    use fabric_types::{ColumnType, Schema};
    use rowstore::RowTable;

    /// 200 rows: id i64, grp char(1) A/B, qty f64 = id, d date = id.
    fn setup() -> (MemoryHierarchy, Catalog) {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let schema = Schema::from_pairs(&[
            ("id", ColumnType::I64),
            ("grp", ColumnType::FixedStr(1)),
            ("qty", ColumnType::F64),
            ("d", ColumnType::Date),
        ]);
        let mut rt = RowTable::create(&mut mem, schema.clone(), 256).unwrap();
        let mut ct = ColTable::create(&mut mem, schema, 256).unwrap();
        for i in 0..200i64 {
            let row = vec![
                Value::I64(i),
                Value::Str(if i % 2 == 0 { "A" } else { "B" }.into()),
                Value::F64(i as f64),
                Value::Date(i as u32),
            ];
            rt.load(&mut mem, &row).unwrap();
            ct.load(&mut mem, &row).unwrap();
        }
        let mut c = Catalog::new();
        c.register("t", rt, ct);
        (mem, c)
    }

    fn all_paths(mem: &mut MemoryHierarchy, c: &Catalog, sql: &str) -> Vec<QueryOutput> {
        let bound = bind(c, &parse(sql).unwrap()).unwrap();
        [AccessPath::Row, AccessPath::Col, AccessPath::Rm]
            .into_iter()
            .map(|p| execute_on(mem, c, &bound, p).unwrap())
            .collect()
    }

    #[test]
    fn projection_identical_on_all_paths() {
        let (mut mem, c) = setup();
        let outs = all_paths(&mut mem, &c, "SELECT id, qty * 2 FROM t WHERE id < 5");
        for o in &outs {
            assert_eq!(o.rows.len(), 5);
            assert_eq!(o.rows[3], vec![Value::I64(3), Value::F64(6.0)]);
        }
        assert_eq!(outs[0].rows, outs[1].rows);
        assert_eq!(outs[0].rows, outs[2].rows);
    }

    #[test]
    fn grouped_aggregation_identical_on_all_paths() {
        let (mut mem, c) = setup();
        let outs = all_paths(
            &mut mem,
            &c,
            "SELECT grp, count(*), sum(qty), avg(qty) FROM t WHERE id < 100 GROUP BY grp",
        );
        for o in &outs {
            assert_eq!(o.rows.len(), 2);
            // Group A: even ids 0..100 -> 50 rows, sum 2450.
            assert_eq!(o.rows[0][0], Value::Str("A".into()));
            assert_eq!(o.rows[0][1], Value::I64(50));
            assert_eq!(o.rows[0][2], Value::F64(2450.0));
            assert_eq!(o.rows[0][3], Value::F64(49.0));
        }
        assert_eq!(outs[0].rows, outs[1].rows);
        assert_eq!(outs[0].rows, outs[2].rows);
    }

    #[test]
    fn scalar_aggregates_and_date_predicates() {
        let (mut mem, c) = setup();
        let outs = all_paths(
            &mut mem,
            &c,
            "SELECT min(qty), max(qty), count(*) FROM t WHERE d >= 50 AND d < 60",
        );
        for o in &outs {
            assert_eq!(
                o.rows,
                vec![vec![Value::F64(50.0), Value::F64(59.0), Value::I64(10)]]
            );
        }
    }

    #[test]
    fn optimizer_path_runs_and_reports() {
        let (mut mem, c) = setup();
        let out = crate::run(&mut mem, &c, "SELECT sum(qty) FROM t").unwrap();
        assert_eq!(out.rows[0][0], Value::F64((0..200).map(|i| i as f64).sum()));
        assert!(out.ns > 0.0);
        assert!(out.cost.rm_ns > 0.0);
    }

    #[test]
    fn col_path_unavailable_without_columnar_copy() {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let schema = Schema::from_pairs(&[("x", ColumnType::I64)]);
        let mut rt = RowTable::create(&mut mem, schema, 4).unwrap();
        rt.load(&mut mem, &[Value::I64(1)]).unwrap();
        let mut c = Catalog::new();
        c.register_rows("u", rt);
        let bound = bind(&c, &parse("SELECT x FROM u").unwrap()).unwrap();
        assert!(execute_on(&mut mem, &c, &bound, AccessPath::Col).is_err());
        // But Row and Rm work fine.
        let out = execute_on(&mut mem, &c, &bound, AccessPath::Rm).unwrap();
        assert_eq!(out.rows, vec![vec![Value::I64(1)]]);
    }

    #[test]
    fn empty_result_sets() {
        let (mut mem, c) = setup();
        let outs = all_paths(&mut mem, &c, "SELECT id FROM t WHERE id < 0");
        for o in &outs {
            assert!(o.rows.is_empty());
        }
        let outs = all_paths(&mut mem, &c, "SELECT count(*) FROM t WHERE id < 0");
        for o in &outs {
            assert_eq!(o.rows, vec![vec![Value::I64(0)]]);
        }
    }

    #[test]
    fn order_by_and_limit_apply_on_every_path() {
        let (mut mem, c) = setup();
        let outs = all_paths(
            &mut mem,
            &c,
            "SELECT id, qty FROM t WHERE id < 20 ORDER BY qty DESC LIMIT 3",
        );
        for o in &outs {
            assert_eq!(o.rows.len(), 3);
            assert_eq!(o.rows[0][0], Value::I64(19));
            assert_eq!(o.rows[2][0], Value::I64(17));
        }
        // ORDER BY position and grouped output.
        let outs = all_paths(
            &mut mem,
            &c,
            "SELECT grp, sum(qty) FROM t GROUP BY grp ORDER BY 2 DESC LIMIT 1",
        );
        for o in &outs {
            assert_eq!(o.rows.len(), 1);
            assert_eq!(o.rows[0][0], Value::Str("B".into())); // odd ids sum higher
        }
    }

    #[test]
    fn order_by_validation_errors() {
        let (_, c) = setup();
        assert!(bind(&c, &parse("SELECT id FROM t ORDER BY 2").unwrap()).is_err());
        assert!(bind(&c, &parse("SELECT id FROM t ORDER BY qty").unwrap()).is_err());
        assert!(bind(&c, &parse("SELECT id, qty FROM t ORDER BY qty").unwrap()).is_ok());
    }

    /// A fixture the optimizer always routes to RM: a wide (16 × i64)
    /// rows-only table where the packed projection is far cheaper than a
    /// full-row software scan. c_j(i) = i*16 + j.
    fn rm_setup(rows: usize) -> (MemoryHierarchy, Catalog) {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let pairs: Vec<(String, ColumnType)> = (0..16)
            .map(|i| (format!("c{i}"), ColumnType::I64))
            .collect();
        let pr: Vec<(&str, ColumnType)> = pairs.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let schema = Schema::from_pairs(&pr);
        let mut rt = RowTable::create(&mut mem, schema, rows).unwrap();
        for i in 0..rows as i64 {
            let row: Vec<Value> = (0..16).map(|j| Value::I64(i * 16 + j)).collect();
            rt.load(&mut mem, &row).unwrap();
        }
        let mut c = Catalog::new();
        c.register_rows("t", rt);
        (mem, c)
    }

    const RM_SQL: &str = "SELECT c0, c5 FROM t WHERE c0 < 800";

    #[test]
    fn resilient_quiet_context_matches_plain_execution() {
        let (mut mem, c) = setup();
        let bound = bind(&c, &parse("SELECT id, qty FROM t WHERE id < 50").unwrap()).unwrap();
        let plain = execute(&mut mem, &c, &bound).unwrap();
        let mut ctx = FaultContext::quiet();
        let out = execute_resilient(&mut mem, &c, &bound, &mut ctx).unwrap();
        assert_eq!(out.rows, plain.rows);
        assert_eq!(out.degraded_from, None);
        assert_eq!(ctx.fallbacks, 0);

        // And on an RM-routed plan, quiet faults deliver on the RM path
        // with its stats attached.
        let (mut mem, c) = rm_setup(1000);
        let bound = bind(&c, &parse(RM_SQL).unwrap()).unwrap();
        let mut ctx = FaultContext::quiet();
        let out = execute_resilient(&mut mem, &c, &bound, &mut ctx).unwrap();
        assert_eq!(out.path, AccessPath::Rm);
        assert_eq!(out.degraded_from, None);
        let stats = out.rm_stats.expect("RM run must report device stats");
        assert_eq!(stats.rows_scanned, 1000);
        assert_eq!(stats.injected_faults, 0);
    }

    #[test]
    fn rm_fault_past_budget_degrades_transparently() {
        let (mut mem, c) = rm_setup(1000);
        let bound = bind(&c, &parse(RM_SQL).unwrap()).unwrap();
        let expected = execute_on(&mut mem, &c, &bound, AccessPath::Row).unwrap();
        // Every delivery times out: the RM attempt must exhaust its budget.
        let cfg = FaultConfig {
            rm_timeout_prob: 1.0,
            ..FaultConfig::quiet(9)
        };
        let mut ctx = FaultContext::new(cfg, RecoveryPolicy::default());
        let out = execute_resilient(&mut mem, &c, &bound, &mut ctx).unwrap();
        assert_eq!(out.degraded_from, Some(AccessPath::Rm));
        assert_eq!(out.path, AccessPath::Row, "no col copy: fallback is Row");
        assert_eq!(ctx.fallbacks, 1);
        let stats = out.rm_stats.expect("failed attempt stats must survive");
        assert!(stats.delivery_timeouts > 0);
        assert!(stats.injected_faults > 0);
        assert_eq!(out.rows, expected.rows, "degraded answer must be identical");
        assert!(out.ns > expected.ns, "ns must include the wasted RM time");
    }

    #[test]
    fn breaker_opens_after_repeated_rm_failures_and_skips_the_device() {
        let (mut mem, c) = rm_setup(1000);
        let bound = bind(&c, &parse(RM_SQL).unwrap()).unwrap();
        let cfg = FaultConfig {
            rm_timeout_prob: 1.0,
            ..FaultConfig::quiet(9)
        };
        let policy = RecoveryPolicy::default();
        let mut ctx = FaultContext::new(cfg, policy);
        let expected = execute_on(&mut mem, &c, &bound, AccessPath::Row).unwrap();
        for _ in 0..policy.breaker_threshold + 2 {
            let out = execute_resilient(&mut mem, &c, &bound, &mut ctx).unwrap();
            assert_eq!(out.rows, expected.rows);
            assert_eq!(out.degraded_from, Some(AccessPath::Rm));
        }
        assert_eq!(ctx.fallbacks, policy.breaker_threshold as u64);
        assert_eq!(
            ctx.breaker_skips, 2,
            "once open, the device is not even tried"
        );
        assert_eq!(ctx.rm_health().trips, 1);
    }

    #[test]
    fn non_rm_plans_ignore_the_fault_context() {
        let (mut mem, c) = setup();
        let bound = bind(&c, &parse("SELECT id FROM t WHERE id < 3").unwrap()).unwrap();
        let cfg = FaultConfig::uniform(4, 1.0);
        let mut ctx = FaultContext::new(cfg, RecoveryPolicy::default());
        let (path, _) = choose_path(
            mem.config(),
            &RmConfig::prototype(),
            c.get("t").unwrap(),
            &bound,
        )
        .unwrap();
        assert_ne!(path, AccessPath::Rm, "fixture must route to software");
        let out = execute_resilient(&mut mem, &c, &bound, &mut ctx).unwrap();
        assert_eq!(out.rows.len(), 3);
        assert_eq!(ctx.fallbacks, 0);
        assert_eq!(ctx.plan.stats().total(), 0);
    }

    #[test]
    fn profile_records_scan_and_sort_phases() {
        let (mut mem, c) = setup();
        let bound = bind(
            &c,
            &parse("SELECT id FROM t WHERE id < 20 ORDER BY 1 DESC").unwrap(),
        )
        .unwrap();
        let out = execute_on(&mut mem, &c, &bound, AccessPath::Row).unwrap();
        let names: Vec<&str> = out.profile.iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["query::scan::row", "query::post::sort"]);
        assert!(out.profile[0].cycles > 0);
        assert!(out.profile[0].bytes_read > 0);
        assert!(!out.profile[0].failed);
        // The sort phase moved no hierarchy bytes (host-side comparisons).
        assert_eq!(out.profile[1].bytes_read, 0);
        // Metrics accounted the run.
        assert_eq!(mem.metrics().counter("query.executions"), 1);
        assert_eq!(mem.metrics().counter("query.path.row"), 1);
        assert_eq!(mem.metrics().counter("query.rows_out"), 20);
    }

    #[test]
    fn traced_query_emits_balanced_spans_even_when_degrading() {
        let (mut mem, c) = rm_setup(1000);
        mem.set_recorder(Box::new(fabric_sim::RingRecorder::new(4096)));
        let bound = bind(&c, &parse(RM_SQL).unwrap()).unwrap();
        let cfg = FaultConfig {
            rm_timeout_prob: 1.0,
            ..FaultConfig::quiet(9)
        };
        let mut ctx = FaultContext::new(cfg, RecoveryPolicy::default());
        let out = execute_resilient(&mut mem, &c, &bound, &mut ctx).unwrap();
        assert_eq!(out.degraded_from, Some(AccessPath::Rm));
        // The failed RM attempt stays in the profile, marked failed,
        // followed by the software fallback scan.
        let rm_phase = out
            .profile
            .iter()
            .find(|p| p.name == "query::scan::rm")
            .expect("failed RM attempt must be profiled");
        assert!(rm_phase.failed);
        let fb_phase = out
            .profile
            .iter()
            .find(|p| p.name == "query::scan::row")
            .expect("fallback scan must be profiled");
        assert!(!fb_phase.failed);
        assert_eq!(mem.metrics().counter("query.degraded"), 1);
        // Every begin has a matching end — the validator checks balance.
        let json = mem.export_trace().expect("ring recorder exports");
        let summary = fabric_sim::validate_chrome_trace(&json).expect("trace must validate");
        assert!(summary.begins > 0 && summary.begins == summary.ends);
        assert!(summary.instants > 0, "degrade instant must be present");
    }

    #[test]
    fn string_equality_predicates() {
        let (mut mem, c) = setup();
        let outs = all_paths(&mut mem, &c, "SELECT count(*) FROM t WHERE grp = 'B'");
        for o in &outs {
            assert_eq!(o.rows, vec![vec![Value::I64(100)]]);
        }
    }
}
