//! SQL tokenizer.

use fabric_types::{FabricError, Result};

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    /// Punctuation and operators: `( ) , * + - / = <> < <= > >=`
    Sym(&'static str),
    /// Keywords, upper-cased.
    Kw(&'static str),
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "AND", "GROUP", "BY", "AS", "SUM", "AVG", "COUNT", "MIN", "MAX",
    "ORDER", "ASC", "DESC", "DATE",
];

/// Tokenize `sql`.
pub fn lex(sql: &str) -> Result<Vec<Token>> {
    let b = sql.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' | ')' | ',' | '*' | '+' | '-' | '/' => {
                out.push(Token::Sym(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '*' => "*",
                    '+' => "+",
                    '-' => "-",
                    _ => "/",
                }));
                i += 1;
            }
            '=' => {
                out.push(Token::Sym("="));
                i += 1;
            }
            '<' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Token::Sym("<="));
                    i += 2;
                } else if b.get(i + 1) == Some(&b'>') {
                    out.push(Token::Sym("<>"));
                    i += 2;
                } else {
                    out.push(Token::Sym("<"));
                    i += 1;
                }
            }
            '>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Token::Sym(">="));
                    i += 2;
                } else {
                    out.push(Token::Sym(">"));
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] != b'\'' {
                    j += 1;
                }
                if j == b.len() {
                    return Err(FabricError::Sql("unterminated string literal".into()));
                }
                out.push(Token::Str(sql[start..j].to_string()));
                i = j + 1;
            }
            '0'..='9' => {
                let start = i;
                let mut j = i;
                let mut is_float = false;
                while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'.') {
                    if b[j] == b'.' {
                        is_float = true;
                    }
                    j += 1;
                }
                let text = &sql[start..j];
                if is_float {
                    let v = text
                        .parse::<f64>()
                        .map_err(|_| FabricError::Sql(format!("bad number `{text}`")))?;
                    out.push(Token::Float(v));
                } else {
                    let v = text
                        .parse::<i64>()
                        .map_err(|_| FabricError::Sql(format!("bad number `{text}`")))?;
                    out.push(Token::Int(v));
                }
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < b.len() && ((b[j] as char).is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                let word = &sql[start..j];
                let upper = word.to_ascii_uppercase();
                if let Some(kw) = KEYWORDS.iter().find(|&&k| k == upper) {
                    out.push(Token::Kw(kw));
                } else {
                    out.push(Token::Ident(word.to_string()));
                }
                i = j;
            }
            other => {
                return Err(FabricError::Sql(format!("unexpected character `{other}`")));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_simple_select() {
        let toks = lex("SELECT a, sum(b) FROM t WHERE a >= 10 AND b < 2.5").unwrap();
        assert_eq!(toks[0], Token::Kw("SELECT"));
        assert_eq!(toks[1], Token::Ident("a".into()));
        assert_eq!(toks[2], Token::Sym(","));
        assert_eq!(toks[3], Token::Kw("SUM"));
        assert!(toks.contains(&Token::Sym(">=")));
        assert!(toks.contains(&Token::Int(10)));
        assert!(toks.contains(&Token::Float(2.5)));
    }

    #[test]
    fn keywords_are_case_insensitive_idents_are_not() {
        let toks = lex("select Foo from BAR").unwrap();
        assert_eq!(toks[0], Token::Kw("SELECT"));
        assert_eq!(toks[1], Token::Ident("Foo".into()));
        assert_eq!(toks[2], Token::Kw("FROM"));
        assert_eq!(toks[3], Token::Ident("BAR".into()));
    }

    #[test]
    fn strings_and_symbols() {
        let toks = lex("x = 'R' AND y <> 'ab c'").unwrap();
        assert_eq!(toks[2], Token::Str("R".into()));
        assert_eq!(toks[5], Token::Sym("<>"));
        assert_eq!(toks[6], Token::Str("ab c".into()));
    }

    #[test]
    fn errors() {
        assert!(lex("SELECT 'oops").is_err());
        assert!(lex("a ? b").is_err());
        assert!(lex("1.2.3").is_err());
    }
}
