//! The layout-aware cost model (paper §III-B).
//!
//! With a Relational Fabric the optimizer *constructs* the cheapest access
//! instead of searching a combinatorial space: for a scan-shaped query the
//! candidate paths are exactly three, and the per-row cost of each is a
//! short closed form mirroring the calibrated engine behaviours:
//!
//! * **ROW** — Volcano over the base rows: line traffic for the touched
//!   spans plus per-tuple interpretation;
//! * **COL** — column-at-a-time over the materialized columnar copy (only
//!   if one exists!): one stream per column, selection passes, tuple
//!   reconstruction past the prefetcher's stream budget;
//! * **RM**  — ephemeral column group: device row beat overlapped with a
//!   single packed consumer stream.

use crate::bind::{BoundQuery, OutputItem};
use crate::catalog::TableEntry;
use fabric_sim::SimConfig;
use fabric_types::geometry::merge_field_spans;
use fabric_types::{FabricError, Result};
use relmem::RmConfig;

/// The three physical access paths of the fabric world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AccessPath {
    Row,
    Col,
    Rm,
}

impl std::fmt::Display for AccessPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AccessPath::Row => "ROW",
            AccessPath::Col => "COL",
            AccessPath::Rm => "RM",
        })
    }
}

/// Estimated nanoseconds and data movement per path (`None` = path
/// unavailable). The byte estimates let `EXPLAIN ANALYZE` report the cost
/// model's relative error against the hierarchy's measured traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PathCost {
    pub row_ns: f64,
    pub col_ns: Option<f64>,
    pub rm_ns: f64,
    /// Core count the estimates are priced for. Morsel-parallel speedup is
    /// capped by the shared L2-port/DRAM bandwidth floor, so `row_ns` at 4
    /// cores is *not* `row_ns(1) / 4` for memory-bound scans.
    pub cores: usize,
    /// Payload bytes the ROW path reads through the hierarchy (the touched
    /// spans of every base row).
    pub row_bytes: f64,
    /// Bytes the COL path reads: projection streams plus selection passes.
    pub col_bytes: Option<f64>,
    /// Bytes the RM device delivers over the bus (line-granular packed
    /// output).
    pub rm_bytes: f64,
}

impl PathCost {
    /// The cheapest available path.
    pub fn best(&self) -> AccessPath {
        let mut best = (AccessPath::Row, self.row_ns);
        if let Some(c) = self.col_ns {
            if c < best.1 {
                best = (AccessPath::Col, c);
            }
        }
        if self.rm_ns < best.1 {
            best = (AccessPath::Rm, self.rm_ns);
        }
        best.0
    }

    /// Estimated nanoseconds for `path` (`None` = unavailable).
    pub fn ns(&self, path: AccessPath) -> Option<f64> {
        match path {
            AccessPath::Row => Some(self.row_ns),
            AccessPath::Col => self.col_ns,
            AccessPath::Rm => Some(self.rm_ns),
        }
    }

    /// Estimated bytes moved for `path` (`None` = unavailable).
    pub fn bytes(&self, path: AccessPath) -> Option<f64> {
        match path {
            AccessPath::Row => Some(self.row_bytes),
            AccessPath::Col => self.col_bytes,
            AccessPath::Rm => Some(self.rm_bytes),
        }
    }
}

/// Estimate all three paths for `bound` over `entry` on one core.
pub fn estimate(
    sim: &SimConfig,
    rm: &RmConfig,
    entry: &TableEntry,
    bound: &BoundQuery,
) -> Result<PathCost> {
    estimate_parallel(sim, rm, entry, bound, 1)
}

/// Estimate all three paths when the scan is morsel-parallelized over
/// `cores` simulated cores.
///
/// The parallel term divides each path's software time by the core count
/// but floors it at the shared-memory bandwidth: every line a core misses
/// must cross the single L2 port (and ultimately the shared DRAM
/// controller), so a memory-bound scan stops scaling once the port is
/// saturated. The RM path only parallelizes its *consume* side — the
/// device produces batches at its own serial beat regardless of how many
/// cores drain them.
pub fn estimate_parallel(
    sim: &SimConfig,
    rm: &RmConfig,
    entry: &TableEntry,
    bound: &BoundQuery,
    cores: usize,
) -> Result<PathCost> {
    let rows = entry.rows.len() as f64;
    let line = sim.line_size as f64;
    let t = path_terms(sim, rm, entry, bound)?;

    let row_ns_per = t.row_scan_ns + t.pred_ns + t.consume_ns;
    let col_ns_per = t.col_scan_ns.map(|scan| scan + t.pred_ns + t.consume_ns);

    // RM: device row beat overlapped with packed consumption.
    let rm_consume = t.rm_scan_ns + t.pred_ns + t.consume_ns;
    let rm_ns_per = rm.engine_ns_per_row.max(rm_consume);

    let row_bytes = t.row_bytes;
    let col_bytes = t.col_bytes;
    let rm_bytes = t.rm_bytes;

    // Parallel scaling: divide by cores, floored at the shared-resource
    // bandwidth (one line per L2-port slot, DRAM banks overlapped behind
    // it) and never cheaper than that floor allows.
    let cores_f = cores.max(1) as f64;
    let shared_line_ns = sim
        .cycles_to_ns(sim.l2_port_cycles)
        .max(sim.dram_row_hit_ns / sim.dram_banks as f64);
    let par = |serial_ns: f64, bytes: f64| {
        let floor_ns = (bytes / line) * shared_line_ns;
        (serial_ns / cores_f).max(floor_ns).min(serial_ns)
    };

    let rm_consume_total = rm_consume * rows;
    let rm_engine_total = rm.engine_ns_per_row * rows;
    // `rm_ns_per` (the serial per-row max) is what cores == 1 must match.
    let rm_ns = if cores <= 1 {
        rm_ns_per * rows + rm.configure_ns
    } else {
        rm_engine_total.max(par(rm_consume_total, rm_bytes)) + rm.configure_ns
    };

    Ok(PathCost {
        row_ns: par(row_ns_per * rows, row_bytes),
        col_ns: col_ns_per.map(|c| par(c * rows, col_bytes.unwrap_or(0.0))),
        rm_ns,
        cores: cores.max(1),
        row_bytes,
        col_bytes,
        rm_bytes,
    })
}

/// Per-operator cost components of the three paths, before parallel
/// scaling. The per-row time of every path is the sum of a path-specific
/// scan term plus the shared `pred` and `consume` terms — the same three
/// pieces the executor lowers to `Scan → [Filter] → Project|Aggregate`,
/// which is what lets [`split_path_cost`] attribute the path estimate to
/// individual DAG nodes.
struct PathTerms {
    /// ROW scan per-row ns: line traffic + morsel-kernel decode.
    row_scan_ns: f64,
    /// COL scan per-row ns (`None` without a columnar copy).
    col_scan_ns: Option<f64>,
    /// RM consume-side per-row ns (bus transfer + vectorized drain);
    /// the device beat `rm.engine_ns_per_row` overlaps it.
    rm_scan_ns: f64,
    /// Predicate evaluation per row (the Filter operator's share).
    pred_ns: f64,
    /// Projection/aggregation per row (the Project|Aggregate share).
    consume_ns: f64,
    /// Payload bytes the ROW path reads (all rows).
    row_bytes: f64,
    /// Bytes the COL path reads (all rows).
    col_bytes: Option<f64>,
    /// Bytes the RM device ships (all rows, line-granular).
    rm_bytes: f64,
}

/// Compute the shared per-operator terms. Extracted from
/// [`estimate_parallel`] verbatim — association order of every float
/// expression is load-bearing (the perf gate pins estimates bit-exactly).
fn path_terms(
    sim: &SimConfig,
    rm: &RmConfig,
    entry: &TableEntry,
    bound: &BoundQuery,
) -> Result<PathTerms> {
    let rows = entry.rows.len() as f64;
    let layout = entry.rows.layout();
    let line = sim.line_size as f64;
    let l2_ns = sim.cycles_to_ns(sim.l2_hit_cycles);
    let cyc = |c: u64| sim.cycles_to_ns(c);
    let costs = fabric_sim::hierarchy::OpCosts::default();

    let n_touched = bound.touched.len() as f64;
    let n_preds = bound.preds.len() as f64;
    // Group width the query moves per row.
    let fields = layout.fields(&bound.touched)?;
    let group_width: usize = fields.iter().map(|f| f.width()).sum();
    let spans = merge_field_spans(&fields, 0);
    let span_lines: f64 = spans
        .iter()
        .map(|&(_, len)| (len as f64 / line).ceil().max(1.0))
        .sum();

    // Shared per-row compute: predicate evaluation + consumption.
    let agg_ops: u64 = bound
        .items
        .iter()
        .map(|i| match i {
            OutputItem::Agg(_, e) => e.ops() + 1,
            OutputItem::Expr(e) => e.ops() + 1,
        })
        .sum();
    let consume_ns = if bound.has_aggregates() {
        let hash = if bound.group_by.is_empty() {
            0.0
        } else {
            cyc(costs.hash_op)
        };
        hash + cyc(costs.f64_op) * agg_ops as f64
    } else {
        cyc(costs.value_op) * agg_ops as f64
    };
    let pred_ns = cyc(costs.value_op) * n_preds;

    // ROW: prefetched line stream + the vectorized morsel kernel. Rows
    // narrower than a line share line fetches; wider rows pay one fetch
    // per span line. The kernel replaced the old per-row Volcano
    // `next()` pair with one vector-setup charge per morsel, amortized
    // here across the morsel's rows; predicates are branch-free, so
    // there is no mispredict term either.
    let rows_per_line = (line / layout.row_width() as f64).max(1.0);
    let row_mem = span_lines * l2_ns / rows_per_line;
    let row_scan_ns = row_mem
        + cyc(costs.vector_setup) / crate::exec::MORSEL_ROWS as f64
        + cyc(costs.decode) * n_touched;

    // COL: per touched column one stream (sequential line cost amortized)
    // plus vectorized per-value work; selection passes add full-column
    // evaluation; beyond the prefetcher's stream budget reconstruction
    // pays demand misses.
    let col_scan_ns = entry.cols.as_ref().map(|_| {
        let per_col_bytes: f64 = group_width as f64 / n_touched.max(1.0);
        let seq_line = l2_ns / (line / per_col_bytes);
        let stream_penalty = if n_touched > sim.prefetch_streams as f64 {
            // A fraction of line fetches become overlapped demand misses.
            let miss = sim.dram_row_miss_ns + sim.dram_demand_overhead_ns;
            (miss / 16.0) * (n_touched - sim.prefetch_streams as f64) / n_touched
        } else {
            0.0
        };
        n_touched * (seq_line + cyc(costs.vector_elem + costs.reconstruct) + stream_penalty)
    });

    // RM consume side: bus transfer of the packed group + the vectorized
    // drain kernel.
    let rm_scan_ns = (group_width as f64 / line) * rm.bus_ns_per_line + cyc(costs.vector_elem);

    // Data movement per path. ROW reads the touched spans of every base
    // row; COL streams the projected columns and re-reads the distinct
    // predicate columns for its selection passes; RM ships line-granular
    // packed output over the bus.
    let span_bytes: f64 = spans.iter().map(|&(_, len)| len as f64).sum();
    let row_bytes = span_bytes * rows;
    let pred_bytes: f64 = {
        let mut cols: Vec<usize> = bound.preds.iter().map(|(slot, ..)| *slot).collect();
        cols.sort_unstable();
        cols.dedup();
        cols.iter().map(|&slot| fields[slot].width() as f64).sum()
    };
    let col_bytes = entry
        .cols
        .as_ref()
        .map(|_| (group_width as f64 + pred_bytes) * rows);
    let packed_rows_per_line = (line / group_width as f64).floor().max(1.0);
    let rm_bytes = (rows / packed_rows_per_line).ceil() * line;

    Ok(PathTerms {
        row_scan_ns,
        col_scan_ns,
        rm_scan_ns,
        pred_ns,
        consume_ns,
        row_bytes,
        col_bytes,
        rm_bytes,
    })
}

/// One operator's share of a path estimate, produced by
/// [`split_path_cost`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpEstimate {
    /// Operator name as the executor lowers it (`scan_row`, `filter`,
    /// `aggregate`, `project`, `merge`).
    pub op: &'static str,
    /// This operator's share of the path's estimated nanoseconds.
    pub ns: f64,
    /// This operator's share of the path's estimated bytes (all data
    /// movement is attributed to the scan node).
    pub bytes: f64,
}

/// Split a path's estimate across the operator DAG the executor lowers
/// for `bound`: `scan_<path> → [filter] → project|aggregate → merge`.
///
/// Shares are proportional to the per-row cost terms of
/// [`estimate_parallel`] (scan term, predicate term, consume term);
/// the merge node absorbs the floating-point residue so the shares sum
/// to the path estimate **bit-exactly** — enforced here like the
/// top-down `buckets_reconcile` invariant, and re-checked by the
/// querylog determinism suite.
pub fn split_path_cost(
    sim: &SimConfig,
    rm: &RmConfig,
    entry: &TableEntry,
    bound: &BoundQuery,
    path: AccessPath,
    cost: &PathCost,
) -> Result<Vec<OpEstimate>> {
    let total_ns = cost.ns(path).ok_or_else(|| {
        FabricError::Internal(format!("cannot split estimate of unavailable path {path}"))
    })?;
    let total_bytes = cost.bytes(path).unwrap_or(0.0);
    let t = path_terms(sim, rm, entry, bound)?;

    let scan_weight = match path {
        AccessPath::Row => t.row_scan_ns,
        AccessPath::Col => t.col_scan_ns.ok_or_else(|| {
            FabricError::Internal("COL split requested without a columnar copy".to_string())
        })?,
        // The device beat overlaps the consume stream; the scan node owns
        // whichever side dominates.
        AccessPath::Rm => rm.engine_ns_per_row.max(t.rm_scan_ns),
    };
    let scan_op = match path {
        AccessPath::Row => "scan_row",
        AccessPath::Col => "scan_col",
        AccessPath::Rm => "scan_rm",
    };

    // Stage-0 weights mirror the lowering: Filter exists only under
    // predicates; consumption is Aggregate or Project.
    let mut weighted: Vec<(&'static str, f64)> = vec![(scan_op, scan_weight)];
    if !bound.preds.is_empty() {
        weighted.push(("filter", t.pred_ns));
    }
    weighted.push((
        if bound.has_aggregates() {
            "aggregate"
        } else {
            "project"
        },
        t.consume_ns,
    ));

    let wsum: f64 = weighted.iter().map(|(_, w)| w).sum();
    let mut ops: Vec<OpEstimate> = if wsum > 0.0 {
        weighted
            .iter()
            .map(|&(op, w)| OpEstimate {
                op,
                ns: total_ns * (w / wsum),
                bytes: 0.0,
            })
            .collect()
    } else {
        // Degenerate weights: the scan owns the whole estimate.
        weighted
            .iter()
            .enumerate()
            .map(|(i, &(op, _))| OpEstimate {
                op,
                ns: if i == 0 { total_ns } else { 0.0 },
                bytes: 0.0,
            })
            .collect()
    };
    ops[0].bytes = total_bytes;

    // The merge node is driver-side bookkeeping the path model does not
    // price; it absorbs the remainder so the left-to-right sum lands on
    // the path estimate exactly. `total - s + s == total` is not an f64
    // identity, so nudge the remainder until the re-summed total
    // round-trips (one or two iterations in practice).
    let stage0_sum = |ops: &[OpEstimate]| ops.iter().map(|o| o.ns).fold(0.0, |a, b| a + b);
    let mut merge_ns = total_ns - stage0_sum(&ops);
    for _ in 0..4 {
        let sum = stage0_sum(&ops) + merge_ns;
        if sum == total_ns {
            break;
        }
        merge_ns += total_ns - sum;
    }
    ops.push(OpEstimate {
        op: "merge",
        ns: merge_ns,
        bytes: 0.0,
    });
    let sum = stage0_sum(&ops);
    if sum != total_ns {
        return Err(FabricError::Internal(format!(
            "per-operator estimates sum to {sum} but the {path} path estimate is {total_ns}"
        )));
    }
    Ok(ops)
}

/// Pick the best path for the query on one core (the "construct the
/// fastest plan" of §III-B).
pub fn choose_path(
    sim: &SimConfig,
    rm: &RmConfig,
    entry: &TableEntry,
    bound: &BoundQuery,
) -> Result<(AccessPath, PathCost)> {
    choose_path_parallel(sim, rm, entry, bound, 1)
}

/// Pick the best path when the executor has `cores` simulated cores: a
/// 1-core RM win can flip to a parallel software scan once the morsel
/// speedup outruns the device's serial production beat (and vice versa —
/// the bandwidth floor keeps wide scans on the device).
pub fn choose_path_parallel(
    sim: &SimConfig,
    rm: &RmConfig,
    entry: &TableEntry,
    bound: &BoundQuery,
    cores: usize,
) -> Result<(AccessPath, PathCost)> {
    let cost = estimate_parallel(sim, rm, entry, bound, cores)?;
    Ok((cost.best(), cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::bind;
    use crate::catalog::Catalog;
    use crate::parser::parse;
    use colstore::ColTable;
    use fabric_sim::MemoryHierarchy;
    use fabric_types::{ColumnType, Schema, Value};
    use rowstore::RowTable;

    fn catalog(with_cols: bool) -> Catalog {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let schema = Schema::uniform(16, ColumnType::I32);
        let mut t = RowTable::create(&mut mem, schema.clone(), 4096).unwrap();
        let mut ct = ColTable::create(&mut mem, schema, 4096).unwrap();
        let row: Vec<Value> = (0..16).map(Value::I32).collect();
        for _ in 0..1000 {
            t.load(&mut mem, &row).unwrap();
            ct.load(&mut mem, &row).unwrap();
        }
        let mut c = Catalog::new();
        if with_cols {
            c.register("t", t, ct);
        } else {
            c.register_rows("t", t);
        }
        c
    }

    fn cost_of(c: &Catalog, sql: &str) -> (AccessPath, PathCost) {
        let bound = bind(c, &parse(sql).unwrap()).unwrap();
        choose_path(
            &SimConfig::zynq_a53(),
            &RmConfig::prototype(),
            c.get("t").unwrap(),
            &bound,
        )
        .unwrap()
    }

    #[test]
    fn without_columnar_copy_col_path_is_unavailable() {
        let c = catalog(false);
        let (_, cost) = cost_of(&c, "SELECT c0 FROM t");
        assert!(cost.col_ns.is_none());
    }

    #[test]
    fn narrow_projection_prefers_col_when_available() {
        let c = catalog(true);
        let (path, cost) = cost_of(&c, "SELECT sum(c0) FROM t");
        assert_eq!(path, AccessPath::Col, "{cost:?}");
    }

    #[test]
    fn wide_projection_prefers_rm() {
        let c = catalog(true);
        let (path, cost) = cost_of(
            &c,
            "SELECT sum(c0), sum(c1), sum(c2), sum(c3), sum(c4), sum(c5), sum(c6), sum(c7) FROM t",
        );
        assert_eq!(path, AccessPath::Rm, "{cost:?}");
    }

    #[test]
    fn rm_always_beats_row_for_scans() {
        let c = catalog(true);
        for sql in ["SELECT c0 FROM t", "SELECT sum(c3) FROM t WHERE c5 < 100"] {
            let (_, cost) = cost_of(&c, sql);
            assert!(cost.rm_ns < cost.row_ns, "{sql}: {cost:?}");
        }
    }

    #[test]
    fn byte_estimates_cover_all_paths() {
        let c = catalog(true);
        let (_, cost) = cost_of(&c, "SELECT c0 FROM t WHERE c1 < 100");
        assert!(cost.row_bytes > 0.0, "{cost:?}");
        assert!(cost.col_bytes.is_some_and(|b| b > 0.0), "{cost:?}");
        assert!(cost.rm_bytes > 0.0, "{cost:?}");
        // Packed RM delivery is line-granular, so it never undershoots one
        // line per batch of rows.
        assert!(cost.rm_bytes >= 64.0, "{cost:?}");
        // The accessors mirror the fields.
        assert_eq!(cost.ns(AccessPath::Row), Some(cost.row_ns));
        assert_eq!(cost.bytes(AccessPath::Col), cost.col_bytes);
        assert_eq!(cost.bytes(AccessPath::Rm), Some(cost.rm_bytes));

        let c = catalog(false);
        let (_, cost) = cost_of(&c, "SELECT c0 FROM t");
        assert_eq!(cost.bytes(AccessPath::Col), None);
    }

    fn parallel_cost(c: &Catalog, sql: &str, cores: usize) -> PathCost {
        let bound = bind(c, &parse(sql).unwrap()).unwrap();
        estimate_parallel(
            &SimConfig::zynq_a53(),
            &RmConfig::prototype(),
            c.get("t").unwrap(),
            &bound,
            cores,
        )
        .unwrap()
    }

    #[test]
    fn one_core_parallel_estimate_is_the_serial_estimate() {
        let c = catalog(true);
        for sql in ["SELECT c0 FROM t", "SELECT sum(c2) FROM t WHERE c1 < 50"] {
            let bound = bind(&c, &parse(sql).unwrap()).unwrap();
            let serial = estimate(
                &SimConfig::zynq_a53(),
                &RmConfig::prototype(),
                c.get("t").unwrap(),
                &bound,
            )
            .unwrap();
            let par = parallel_cost(&c, sql, 1);
            assert_eq!(serial, par, "{sql}");
            assert_eq!(par.cores, 1);
        }
    }

    #[test]
    fn parallel_speedup_is_monotonic_and_bounded_by_core_count() {
        let c = catalog(true);
        let sql = "SELECT sum(c0), sum(c1) FROM t WHERE c2 < 50";
        let base = parallel_cost(&c, sql, 1);
        let mut prev = base;
        for cores in [2usize, 4, 8] {
            let cost = parallel_cost(&c, sql, cores);
            for path in [AccessPath::Row, AccessPath::Col] {
                let serial = base.ns(path).unwrap();
                let par = cost.ns(path).unwrap();
                assert!(
                    par <= prev.ns(path).unwrap(),
                    "{path} regressed at {cores} cores"
                );
                assert!(
                    serial / par <= cores as f64 + 1e-9,
                    "{path} speedup {:.2} beats the core count at {cores} cores",
                    serial / par
                );
            }
            // More cores never make the RM path cheaper than its serial
            // device beat allows.
            assert!(
                cost.rm_ns <= prev.rm_ns + 1e-9,
                "RM regressed at {cores} cores"
            );
            prev = cost;
        }
    }

    #[test]
    fn parallel_estimates_never_undercut_the_bandwidth_floor() {
        // At an absurd core count the estimate must converge to the
        // shared-resource floor — bytes/line slots through the L2 port or
        // the DRAM controller, whichever is tighter — not to zero.
        let c = catalog(true);
        let sim = SimConfig::zynq_a53();
        let shared_line_ns = sim
            .cycles_to_ns(sim.l2_port_cycles)
            .max(sim.dram_row_hit_ns / sim.dram_banks as f64);
        let cost = parallel_cost(&c, "SELECT c0, c1, c2, c3 FROM t", 1024);
        let line = sim.line_size as f64;
        for path in [AccessPath::Row, AccessPath::Col] {
            let floor = (cost.bytes(path).unwrap() / line) * shared_line_ns;
            assert!(
                cost.ns(path).unwrap() >= floor - 1e-9,
                "{path} priced below the bandwidth floor: {:?}",
                cost.ns(path)
            );
        }
    }

    #[test]
    fn rm_device_beat_stays_serial_under_parallelism() {
        // The device produces rows at its own beat; cores only drain
        // faster. A device-bound query therefore keeps its engine time no
        // matter how many cores consume.
        let c = catalog(true);
        let rm = RmConfig::prototype();
        let rows = c.get("t").unwrap().rows.len() as f64;
        let cost = parallel_cost(&c, "SELECT c0, c1, c2, c3, c4, c5, c6, c7 FROM t", 64);
        assert!(
            cost.rm_ns >= rm.engine_ns_per_row * rows,
            "RM priced below the device's serial production beat: {:?}",
            cost.rm_ns
        );
    }

    #[test]
    fn split_estimates_sum_bit_exactly_on_every_path() {
        let c = catalog(true);
        let sim = SimConfig::zynq_a53();
        let rm = RmConfig::prototype();
        for sql in [
            "SELECT c0 FROM t",
            "SELECT sum(c2) FROM t WHERE c1 < 50",
            "SELECT c0, sum(c3) FROM t WHERE c1 < 50 GROUP BY c0",
        ] {
            let bound = bind(&c, &parse(sql).unwrap()).unwrap();
            let entry = c.get("t").unwrap();
            for cores in [1usize, 4] {
                let cost = estimate_parallel(&sim, &rm, entry, &bound, cores).unwrap();
                for path in [AccessPath::Row, AccessPath::Col, AccessPath::Rm] {
                    let ops = split_path_cost(&sim, &rm, entry, &bound, path, &cost).unwrap();
                    let sum: f64 = ops.iter().map(|o| o.ns).fold(0.0, |a, b| a + b);
                    assert_eq!(
                        sum.to_bits(),
                        cost.ns(path).unwrap().to_bits(),
                        "{sql} on {path} at {cores} cores: {sum} != {:?}",
                        cost.ns(path)
                    );
                    let byte_sum: f64 = ops.iter().map(|o| o.bytes).sum();
                    assert_eq!(byte_sum, cost.bytes(path).unwrap(), "{sql} on {path}");
                    assert!(ops.iter().all(|o| o.ns >= 0.0 || o.op == "merge"));
                }
            }
        }
    }

    #[test]
    fn split_mirrors_the_lowered_operator_chain() {
        let c = catalog(true);
        let sim = SimConfig::zynq_a53();
        let rm = RmConfig::prototype();
        let entry = c.get("t").unwrap();

        let bound = bind(&c, &parse("SELECT c0 FROM t").unwrap()).unwrap();
        let cost = estimate(&sim, &rm, entry, &bound).unwrap();
        let ops = split_path_cost(&sim, &rm, entry, &bound, AccessPath::Row, &cost).unwrap();
        let names: Vec<&str> = ops.iter().map(|o| o.op).collect();
        assert_eq!(names, ["scan_row", "project", "merge"], "no filter node");
        // All data movement belongs to the scan.
        assert_eq!(ops[0].bytes, cost.row_bytes);
        assert!(ops[1..].iter().all(|o| o.bytes == 0.0));

        let bound = bind(&c, &parse("SELECT sum(c0) FROM t WHERE c1 < 10").unwrap()).unwrap();
        let cost = estimate(&sim, &rm, entry, &bound).unwrap();
        let ops = split_path_cost(&sim, &rm, entry, &bound, AccessPath::Col, &cost).unwrap();
        let names: Vec<&str> = ops.iter().map(|o| o.op).collect();
        assert_eq!(names, ["scan_col", "filter", "aggregate", "merge"]);

        // Splitting an unavailable path is an error, not a zero split.
        let c = catalog(false);
        let entry = c.get("t").unwrap();
        let bound = bind(&c, &parse("SELECT c0 FROM t").unwrap()).unwrap();
        let cost = estimate(&sim, &rm, entry, &bound).unwrap();
        assert!(split_path_cost(&sim, &rm, entry, &bound, AccessPath::Col, &cost).is_err());
    }

    #[test]
    fn estimates_scale_with_rows() {
        let c = catalog(true);
        let bound = bind(&c, &parse("SELECT c0 FROM t").unwrap()).unwrap();
        let full = estimate(
            &SimConfig::zynq_a53(),
            &RmConfig::prototype(),
            c.get("t").unwrap(),
            &bound,
        )
        .unwrap();
        assert!(full.row_ns > 0.0 && full.rm_ns > 0.0);
    }
}
