//! EXPLAIN-style plan rendering: what the layout-aware optimizer decided
//! and why — the §III-B story made visible — plus `EXPLAIN ANALYZE`,
//! which *runs* the query on every available path and reports estimated
//! vs. measured cost (cycles and bytes), recording the cost model's
//! relative error into the hierarchy's metrics registry.

use crate::bind::{BoundQuery, OutputItem};
use crate::catalog::{Catalog, TableEntry};
use crate::cost::{choose_path, choose_path_parallel, AccessPath, PathCost};
use crate::exec::{execute_on_impl, CoreAttribution, OpReport, PhaseProfile};
use fabric_sim::{MemoryHierarchy, MetricsRegistry, SimConfig};
use fabric_types::{FabricError, Result};
use mvcc::RecoveryReport;
use relmem::RmConfig;
use std::fmt::Write as _;

/// All rendering goes through `std::fmt::Write`; a formatter error (which
/// `String` cannot actually produce) surfaces as a structured fabric error
/// instead of being discarded.
fn fmt_err(e: std::fmt::Error) -> FabricError {
    FabricError::Internal(format!("plan rendering: {e}"))
}

/// Render the chosen plan for `bound` as human-readable text, including the
/// per-path cost estimates.
pub fn explain(sim: &SimConfig, catalog: &Catalog, bound: &BoundQuery) -> Result<String> {
    let entry = catalog.get(&bound.table)?;
    let (path, cost) = choose_path(sim, &RmConfig::prototype(), entry, bound)?;
    render_plan(entry, bound, path, &cost).map_err(fmt_err)
}

/// Error-mapped plan rendering for callers outside this module (the
/// session API).
pub(crate) fn render_plan_for(
    entry: &TableEntry,
    bound: &BoundQuery,
    path: AccessPath,
    cost: &PathCost,
) -> Result<String> {
    render_plan(entry, bound, path, cost).map_err(fmt_err)
}

/// The fallible renderer behind [`explain`] (and the header of
/// [`explain_analyze`]): every `writeln!` propagates.
fn render_plan(
    entry: &TableEntry,
    bound: &BoundQuery,
    path: AccessPath,
    cost: &PathCost,
) -> std::result::Result<String, std::fmt::Error> {
    let schema = entry.schema();
    let col_name = |slot: usize| -> String {
        schema
            .column(bound.touched[slot])
            .map(|c| c.name.clone())
            .unwrap_or_else(|_| format!("${slot}"))
    };

    let mut out = String::new();
    writeln!(
        out,
        "Plan for `{}` ({} rows)",
        bound.table,
        entry.rows.len()
    )?;
    let access = match path {
        AccessPath::Row => "Volcano sequential scan over the row layout".to_string(),
        AccessPath::Col => "column-at-a-time over the materialized columnar copy".to_string(),
        AccessPath::Rm => format!(
            "Relational Memory: ephemeral column group of {} columns ({} B/row packed)",
            bound.touched.len(),
            bound
                .touched
                .iter()
                .map(|&c| schema.column(c).map(|d| d.ty.width()).unwrap_or(0))
                .sum::<usize>()
        ),
    };
    writeln!(out, "  access: {path} — {access}")?;

    if !bound.preds.is_empty() {
        let preds: Vec<String> = bound
            .preds
            .iter()
            .map(|(slot, op, v)| format!("{} {op} {v}", col_name(*slot)))
            .collect();
        writeln!(out, "  filter: {}", preds.join(" AND "))?;
    }
    let items: Vec<String> = bound
        .items
        .iter()
        .map(|item| match item {
            OutputItem::Expr(e) => e.to_string(),
            OutputItem::Agg(f, e) => format!("{}({e})", f.name()),
        })
        .collect();
    writeln!(out, "  output: {}", items.join(", "))?;
    if !bound.group_by.is_empty() {
        let keys: Vec<String> = bound.group_by.iter().map(|&s| col_name(s)).collect();
        writeln!(out, "  group by: {}", keys.join(", "))?;
    }
    if !bound.order_by.is_empty() {
        let keys: Vec<String> = bound
            .order_by
            .iter()
            .map(|&(pos, desc)| format!("#{}{}", pos + 1, if desc { " DESC" } else { "" }))
            .collect();
        writeln!(out, "  order by: {}", keys.join(", "))?;
    }
    if let Some(limit) = bound.limit {
        writeln!(out, "  limit: {limit}")?;
    }

    writeln!(
        out,
        "  estimates: ROW {:.3} ms | COL {} | RM {:.3} ms{}",
        cost.row_ns / 1e6,
        cost.col_ns
            .map(|c| format!("{:.3} ms", c / 1e6))
            .unwrap_or_else(|| "unavailable (no columnar copy)".into()),
        cost.rm_ns / 1e6,
        if cost.cores > 1 {
            format!(" (priced at {} cores)", cost.cores)
        } else {
            String::new()
        },
    )?;
    Ok(out)
}

/// Parse + bind + explain in one call.
pub fn explain_sql(sim: &SimConfig, catalog: &Catalog, sql: &str) -> Result<String> {
    let stmt = crate::parser::parse(sql)?;
    let bound = crate::bind::bind(catalog, &stmt)?;
    explain(sim, catalog, &bound)
}

/// One access path's estimated-vs-measured comparison from
/// [`explain_analyze`].
#[derive(Debug, Clone, PartialEq)]
pub struct PathReport {
    pub path: AccessPath,
    /// The cost model's prediction.
    pub est_ns: f64,
    /// Simulated time the path actually took.
    pub actual_ns: f64,
    /// The cost model's predicted data movement.
    pub est_bytes: f64,
    /// Bytes actually moved: hierarchy payload reads for ROW/COL, packed
    /// lines delivered over the bus for RM.
    pub actual_bytes: u64,
}

impl PathReport {
    /// |est − actual| / actual, in percent (actual floored at one unit so
    /// an empty run cannot divide by zero).
    pub fn ns_rel_err_pct(&self) -> f64 {
        rel_err_pct(self.est_ns, self.actual_ns)
    }

    pub fn bytes_rel_err_pct(&self) -> f64 {
        rel_err_pct(self.est_bytes, self.actual_bytes as f64)
    }
}

fn rel_err_pct(est: f64, actual: f64) -> f64 {
    (est - actual).abs() / actual.max(1.0) * 100.0
}

/// Run `bound` on every *available* path and measure actual cost. Returns
/// the per-path reports plus the chosen path's phase profile (its plan-node
/// breakdown). Each path's relative error lands in the hierarchy's metrics
/// registry as `explain.rel_err_pct.{ns,bytes}.<path>` gauges.
pub fn analyze_paths(
    mem: &mut MemoryHierarchy,
    catalog: &Catalog,
    bound: &BoundQuery,
) -> Result<(AccessPath, Vec<PathReport>, Vec<PhaseProfile>)> {
    let (chosen, reports, profile, _, _, _) = analyze_paths_impl(mem, catalog, bound)?;
    Ok((chosen, reports, profile))
}

/// Full-fidelity form of [`analyze_paths`]: also returns the chosen path's
/// per-core cycle/byte attribution, its top-down cycle breakdown, and its
/// per-operator estimate/actual reports.
#[allow(clippy::type_complexity)]
pub(crate) fn analyze_paths_impl(
    mem: &mut MemoryHierarchy,
    catalog: &Catalog,
    bound: &BoundQuery,
) -> Result<(
    AccessPath,
    Vec<PathReport>,
    Vec<PhaseProfile>,
    Vec<CoreAttribution>,
    fabric_sim::TopDown,
    Vec<OpReport>,
)> {
    let entry = catalog.get(&bound.table)?;
    let (chosen, cost) = choose_path_parallel(
        mem.config(),
        &RmConfig::prototype(),
        entry,
        bound,
        mem.num_cores(),
    )?;
    let line = mem.config().line_size as u64;

    let mut reports = Vec::new();
    let mut chosen_profile = Vec::new();
    let mut chosen_cores = Vec::new();
    let mut chosen_topdown = fabric_sim::TopDown::default();
    let mut chosen_ops = Vec::new();
    for path in [AccessPath::Row, AccessPath::Col, AccessPath::Rm] {
        // An unpriced path (COL without a columnar copy) is unavailable.
        let (Some(est_ns), Some(est_bytes)) = (cost.ns(path), cost.bytes(path)) else {
            continue;
        };
        let before = mem.stats();
        let out = execute_on_impl(mem, catalog, bound, path)?;
        let d = mem.stats().delta_since(&before);
        let actual_bytes = match (&out.rm_stats, path) {
            (Some(rm), AccessPath::Rm) => rm.output_lines * line,
            _ => d.bytes_read,
        };
        let report = PathReport {
            path,
            est_ns,
            actual_ns: out.ns,
            est_bytes,
            actual_bytes,
        };
        let key = match path {
            AccessPath::Row => "row",
            AccessPath::Col => "col",
            AccessPath::Rm => "rm",
        };
        // Per-operator calibration gauges for this path: how far each DAG
        // node's estimate share drifted from its apportioned actual. The
        // merge is excluded — its estimate is the f64 fix-up remainder, so
        // a relative error against it is numerology, not calibration.
        let op_errs: Vec<(String, f64)> = out
            .ops
            .iter()
            .filter(|o| o.op != "merge")
            .map(|o| {
                let actual_ns = mem.config().cycles_to_ns(o.actual_cycles);
                (
                    format!("explain.op_rel_err_pct.ns.{key}.{}", o.op),
                    rel_err_pct(o.est_ns, actual_ns),
                )
            })
            .collect();
        let metrics = mem.metrics_mut();
        for (name, err) in op_errs {
            metrics.gauge_set(&name, err);
        }
        metrics.gauge_set(
            &format!("explain.rel_err_pct.ns.{key}"),
            report.ns_rel_err_pct(),
        );
        metrics.gauge_set(
            &format!("explain.rel_err_pct.bytes.{key}"),
            report.bytes_rel_err_pct(),
        );
        if path == chosen {
            chosen_profile = out.profile;
            chosen_cores = out.cores;
            chosen_topdown = out.topdown;
            chosen_ops = out.ops;
        }
        reports.push(report);
    }
    mem.metrics_mut().counter_add("explain.analyze_runs", 1);
    Ok((
        chosen,
        reports,
        chosen_profile,
        chosen_cores,
        chosen_topdown,
        chosen_ops,
    ))
}

/// `EXPLAIN ANALYZE`: render the plan, then execute the query on every
/// available path and append a table of estimated vs. actual cost (cycles
/// and bytes) with the cost model's relative error, plus the chosen path's
/// per-phase breakdown.
pub fn explain_analyze(
    mem: &mut MemoryHierarchy,
    catalog: &Catalog,
    bound: &BoundQuery,
) -> Result<String> {
    let entry = catalog.get(&bound.table)?;
    let (path, cost) = choose_path_parallel(
        mem.config(),
        &RmConfig::prototype(),
        entry,
        bound,
        mem.num_cores(),
    )?;
    let header = render_plan(entry, bound, path, &cost).map_err(fmt_err)?;
    let has_cols = entry.cols.is_some();
    let (_, reports, profile, cores, topdown, ops) = analyze_paths_impl(mem, catalog, bound)?;
    render_analyze(
        &header, has_cols, &reports, &profile, &cores, &topdown, &ops,
    )
    .map_err(fmt_err)
}

/// Error-mapped analyze rendering for callers outside this module (the
/// session API).
#[allow(clippy::too_many_arguments)]
pub(crate) fn render_analyze_report(
    header: &str,
    has_cols: bool,
    reports: &[PathReport],
    profile: &[PhaseProfile],
    cores: &[CoreAttribution],
    topdown: &fabric_sim::TopDown,
    ops: &[OpReport],
) -> Result<String> {
    render_analyze(header, has_cols, reports, profile, cores, topdown, ops).map_err(fmt_err)
}

#[allow(clippy::too_many_arguments)]
fn render_analyze(
    header: &str,
    has_cols: bool,
    reports: &[PathReport],
    profile: &[PhaseProfile],
    cores: &[CoreAttribution],
    topdown: &fabric_sim::TopDown,
    ops: &[OpReport],
) -> std::result::Result<String, std::fmt::Error> {
    let mut out = String::from(header);
    writeln!(out, "  analyze:")?;
    for r in reports {
        writeln!(
            out,
            "    {:<3}  est {:>10.3} ms / {:>12.0} B   actual {:>10.3} ms / {:>12} B   err ns {:>6.1}% bytes {:>6.1}%",
            r.path.to_string(),
            r.est_ns / 1e6,
            r.est_bytes,
            r.actual_ns / 1e6,
            r.actual_bytes,
            r.ns_rel_err_pct(),
            r.bytes_rel_err_pct(),
        )?;
    }
    if !has_cols {
        writeln!(out, "    COL  unavailable (no columnar copy)")?;
    }
    if !ops.is_empty() {
        writeln!(out, "  operators (chosen path):")?;
        for (depth, o) in ops.iter().enumerate() {
            let connector = if depth == 0 {
                String::new()
            } else {
                format!("{}└─ ", "   ".repeat(depth - 1))
            };
            let label = format!("{connector}{}", o.op);
            write!(
                out,
                "    {:<24}  est {:>10.3} ms / {:>12.0} B   actual {:>12} cycles / {:>12} B   rows {} -> {}   inv {}",
                label,
                o.est_ns / 1e6,
                o.est_bytes,
                o.actual_cycles,
                o.actual_bytes,
                o.rows_in,
                o.rows_out,
                o.invocations,
            )?;
            if o.op == "filter" && o.rows_in > 0 {
                // The cost model prices the filter over every scanned row
                // (estimated selectivity 100%); the observed selectivity
                // is what the predicate actually let through.
                writeln!(
                    out,
                    "   selectivity est 100.0% obs {:>5.1}%",
                    o.rows_out as f64 / o.rows_in as f64 * 100.0
                )?;
            } else {
                writeln!(out)?;
            }
        }
    }
    if !profile.is_empty() {
        writeln!(out, "  nodes (chosen path):")?;
        for p in profile {
            writeln!(
                out,
                "    {:<18}  {:>12} cycles  {:>12} B read  {:>12} stall cycles{}",
                p.name,
                p.cycles,
                p.bytes_read,
                p.stall_cycles,
                if p.failed { "  [failed]" } else { "" },
            )?;
        }
    }
    if !cores.is_empty() {
        writeln!(out, "  cores (chosen path):")?;
        let elapsed: u64 = cores
            .iter()
            .map(|a| a.busy_cycles + a.idle_cycles)
            .max()
            .unwrap_or(0);
        for a in cores {
            writeln!(
                out,
                "    core {:<2}  busy {:>12} cycles ({:>5.1}%)  cpu {:>12}  stall {:>12}  mem {:>12}  idle {:>12}  {:>12} B read",
                a.core,
                a.busy_cycles,
                a.busy_cycles as f64 / (elapsed.max(1)) as f64 * 100.0,
                a.cpu_cycles,
                a.stall_cycles,
                a.mem_lat_cycles,
                a.idle_cycles,
                a.bytes_read,
            )?;
        }
        writeln!(out, "    elapsed {elapsed} cycles (global clock)")?;
    }
    if !topdown.cores.is_empty() {
        writeln!(out, "  top-down (chosen path):")?;
        out.push_str(&topdown.render());
    }
    Ok(out)
}

/// The per-class latency digest appended to `EXPLAIN ANALYZE` by the
/// session API: sample count and deterministic p50/p95/p99 (in simulated
/// cycles) of every query class the engine has executed so far. Empty
/// when no session query has run yet.
pub(crate) fn render_latency_section(reg: &MetricsRegistry) -> Result<String> {
    let mut out = String::new();
    let render = |out: &mut String| -> std::result::Result<(), std::fmt::Error> {
        for class in ["q1", "q6", "scan"] {
            let key = format!("query.class.{class}.latency_cycles");
            if let Some(h) = reg.histogram(&key) {
                if out.is_empty() {
                    writeln!(out, "  latency (cycle-domain, engine lifetime):")?;
                }
                writeln!(
                    out,
                    "    {:<4}  n {:>6}  p50 {:>12.0}  p95 {:>12.0}  p99 {:>12.0} cycles",
                    class,
                    h.count(),
                    h.quantile(0.50),
                    h.quantile(0.95),
                    h.quantile(0.99),
                )?;
            }
        }
        Ok(())
    };
    render(&mut out).map_err(fmt_err)?;
    Ok(out)
}

/// The recovery appendix of `EXPLAIN ANALYZE`: one line per table the
/// engine opened from a crash image, with the report's headline numbers.
/// Empty when the engine never recovered anything.
pub(crate) fn render_recovery_section(recoveries: &[(String, RecoveryReport)]) -> Result<String> {
    let mut out = String::new();
    let render = |out: &mut String| -> std::result::Result<(), std::fmt::Error> {
        for (name, r) in recoveries {
            if out.is_empty() {
                writeln!(out, "  recovered tables:")?;
            }
            writeln!(
                out,
                "    `{}`  watermark {}  commits {}  checkpoint {}  torn-tail {} B{}",
                name,
                r.watermark,
                r.commits_replayed,
                r.checkpoint_used
                    .map_or_else(|| "-".to_string(), |id| id.to_string()),
                r.truncated_bytes,
                match &r.degraded {
                    Some(why) => format!("  DEGRADED: {why}"),
                    None => String::new(),
                },
            )?;
        }
        Ok(())
    };
    render(&mut out).map_err(fmt_err)?;
    Ok(out)
}

/// Parse + bind + `EXPLAIN ANALYZE` in one call.
pub fn explain_analyze_sql(
    mem: &mut MemoryHierarchy,
    catalog: &Catalog,
    sql: &str,
) -> Result<String> {
    let stmt = crate::parser::parse(sql)?;
    let bound = crate::bind::bind(catalog, &stmt)?;
    explain_analyze(mem, catalog, &bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use colstore::ColTable;
    use fabric_types::{ColumnType, Schema, Value};
    use rowstore::RowTable;

    fn catalog() -> Catalog {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let schema = Schema::from_pairs(&[
            ("id", ColumnType::I64),
            ("qty", ColumnType::F64),
            ("region", ColumnType::FixedStr(1)),
        ]);
        let mut t = RowTable::create(&mut mem, schema, 8192).unwrap();
        for i in 0..8000i64 {
            t.load(
                &mut mem,
                &[Value::I64(i), Value::F64(i as f64), Value::Str("N".into())],
            )
            .unwrap();
        }
        let mut c = Catalog::new();
        c.register_rows("orders", t);
        c
    }

    /// Like [`catalog`], but with a columnar copy so all three paths run.
    fn catalog_with_cols(rows: i64) -> (MemoryHierarchy, Catalog) {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let schema = Schema::from_pairs(&[("id", ColumnType::I64), ("qty", ColumnType::F64)]);
        let mut rt = RowTable::create(&mut mem, schema.clone(), rows as usize).unwrap();
        let mut ct = ColTable::create(&mut mem, schema, rows as usize).unwrap();
        for i in 0..rows {
            let row = vec![Value::I64(i), Value::F64(i as f64)];
            rt.load(&mut mem, &row).unwrap();
            ct.load(&mut mem, &row).unwrap();
        }
        let mut c = Catalog::new();
        c.register("orders", rt, ct);
        (mem, c)
    }

    #[test]
    fn explain_names_the_plan_pieces() {
        let c = catalog();
        let text = explain_sql(
            &SimConfig::zynq_a53(),
            &c,
            "SELECT region, sum(qty) FROM orders WHERE id < 10 \
             GROUP BY region ORDER BY 2 DESC LIMIT 5",
        )
        .unwrap();
        assert!(text.contains("Plan for `orders` (8000 rows)"), "{text}");
        assert!(text.contains("filter: id < 10"), "{text}");
        assert!(text.contains("group by: region"), "{text}");
        assert!(text.contains("order by: #2 DESC"), "{text}");
        assert!(text.contains("limit: 5"), "{text}");
        assert!(text.contains("estimates: ROW"), "{text}");
        assert!(text.contains("unavailable (no columnar copy)"), "{text}");
    }

    #[test]
    fn explain_reports_the_chosen_access() {
        // Narrow rows (17 bytes, 8 touched): the vectorized ROW morsel
        // kernel amortized away the per-row interpreter overhead, so the
        // line stream wins even against the fabric — the crossover moved
        // with the engine and the model moved with it.
        let c = catalog();
        let text = explain_sql(&SimConfig::zynq_a53(), &c, "SELECT sum(qty) FROM orders").unwrap();
        assert!(text.contains("access: ROW"), "{text}");

        // Wide rows, low projectivity: ROW drags the untouched 120
        // bytes per row through the hierarchy, and the fabric path wins
        // scans — the paper's headline regime is unchanged.
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let pairs: Vec<(&str, ColumnType)> = (0..16)
            .map(|i| {
                let name: &'static str = Box::leak(format!("c{i}").into_boxed_str());
                (name, ColumnType::I64)
            })
            .collect();
        let schema = Schema::from_pairs(&pairs);
        let mut t = RowTable::create(&mut mem, schema, 8192).unwrap();
        for i in 0..8000i64 {
            t.load(
                &mut mem,
                &(0..16).map(|k| Value::I64(i + k)).collect::<Vec<_>>(),
            )
            .unwrap();
        }
        let mut c = Catalog::new();
        c.register_rows("wide", t);
        let text = explain_sql(&SimConfig::zynq_a53(), &c, "SELECT sum(c3) FROM wide").unwrap();
        assert!(text.contains("access: RM"), "{text}");
        assert!(text.contains("ephemeral column group"), "{text}");
    }

    #[test]
    fn explain_propagates_bind_errors() {
        let c = catalog();
        assert!(explain_sql(&SimConfig::zynq_a53(), &c, "SELECT nope FROM orders").is_err());
        assert!(explain_sql(&SimConfig::zynq_a53(), &c, "SELECT id FROM missing").is_err());
    }

    #[test]
    fn explain_analyze_measures_all_three_paths() {
        let (mut mem, c) = catalog_with_cols(2000);
        let text = explain_analyze_sql(&mut mem, &c, "SELECT sum(qty) FROM orders WHERE id < 1000")
            .unwrap();
        assert!(text.contains("analyze:"), "{text}");
        for path in ["ROW", "COL", "RM"] {
            assert!(
                text.lines().any(|l| {
                    l.trim_start().starts_with(path) && l.contains("est") && l.contains("actual")
                }),
                "missing {path} analyze row in:\n{text}"
            );
        }
        assert!(text.contains("err ns"), "{text}");
        assert!(text.contains("nodes (chosen path):"), "{text}");
        assert!(text.contains("top-down (chosen path):"), "{text}");
        assert!(text.contains("stall.retry"), "{text}");
        // Relative-error gauges landed in the metrics registry for every
        // path, and the model stays honest on this selective-aggregate
        // shape: the ROW estimate tracks the vectorized morsel kernel
        // (the old per-row Volcano pricing would drift past 50% here),
        // and the COL/RM estimates stay within their documented slack.
        for (key, bound) in [("row", 30.0), ("col", 60.0), ("rm", 50.0)] {
            for dim in ["ns", "bytes"] {
                let name = format!("explain.rel_err_pct.{dim}.{key}");
                assert!(mem.metrics().gauge(&name).is_some(), "missing gauge {name}");
            }
            let err = mem
                .metrics()
                .gauge(&format!("explain.rel_err_pct.ns.{key}"))
                .unwrap();
            assert!(err < bound, "{key} ns rel-err {err:.1}% ≥ {bound}%");
        }
        // The per-operator split inherits the same honesty: every
        // stage-0 operator's rel-err gauge stays inside the path bound
        // (the scan absorbs the phase remainder, so it is the
        // worst-case node).
        for (key, scan, bound) in [
            ("row", "scan_row", 30.0),
            ("col", "scan_col", 60.0),
            ("rm", "scan_rm", 50.0),
        ] {
            let name = format!("explain.op_rel_err_pct.ns.{key}.{scan}");
            let err = mem
                .metrics()
                .gauge(&name)
                .unwrap_or_else(|| panic!("missing gauge {name}"));
            assert!(err < bound, "{name} = {err:.1}% ≥ {bound}%");
        }
        assert!(text.contains("operators (chosen path):"), "{text}");
        assert!(text.contains("selectivity est 100.0%"), "{text}");
        assert_eq!(mem.metrics().counter("explain.analyze_runs"), 1);
    }

    #[test]
    fn explain_analyze_without_columnar_copy_marks_col_unavailable() {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let schema = Schema::from_pairs(&[("id", ColumnType::I64), ("qty", ColumnType::F64)]);
        let mut t = RowTable::create(&mut mem, schema, 512).unwrap();
        for i in 0..500i64 {
            t.load(&mut mem, &[Value::I64(i), Value::F64(i as f64)])
                .unwrap();
        }
        let mut c = Catalog::new();
        c.register_rows("orders", t);
        let text = explain_analyze_sql(&mut mem, &c, "SELECT sum(qty) FROM orders").unwrap();
        assert!(
            text.contains("COL  unavailable (no columnar copy)"),
            "{text}"
        );
        assert!(mem.metrics().gauge("explain.rel_err_pct.ns.col").is_none());
        assert!(mem.metrics().gauge("explain.rel_err_pct.ns.rm").is_some());
    }

    #[test]
    fn analyze_reports_are_structurally_sound() {
        let (mut mem, c) = catalog_with_cols(500);
        let stmt = crate::parser::parse("SELECT id FROM orders WHERE id < 100").unwrap();
        let bound = crate::bind::bind(&c, &stmt).unwrap();
        let (chosen, reports, profile) = analyze_paths(&mut mem, &c, &bound).unwrap();
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert!(r.actual_ns > 0.0, "{r:?}");
            assert!(r.actual_bytes > 0, "{r:?}");
            assert!(r.est_ns > 0.0 && r.est_bytes > 0.0, "{r:?}");
            assert!(r.ns_rel_err_pct().is_finite());
            assert!(r.bytes_rel_err_pct().is_finite());
        }
        // The chosen path's profile has at least its scan node.
        assert!(reports.iter().any(|r| r.path == chosen));
        assert!(!profile.is_empty());
        assert!(profile.iter().any(|p| p.name.starts_with("query::scan::")));
    }
}
