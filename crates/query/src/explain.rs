//! EXPLAIN-style plan rendering: what the layout-aware optimizer decided
//! and why — the §III-B story made visible.

use crate::bind::{BoundQuery, OutputItem};
use crate::catalog::Catalog;
use crate::cost::{choose_path, AccessPath};
use fabric_sim::SimConfig;
use fabric_types::Result;
use relmem::RmConfig;
use std::fmt::Write as _;

/// Render the chosen plan for `bound` as human-readable text, including the
/// per-path cost estimates.
pub fn explain(sim: &SimConfig, catalog: &Catalog, bound: &BoundQuery) -> Result<String> {
    let entry = catalog.get(&bound.table)?;
    let (path, cost) = choose_path(sim, &RmConfig::prototype(), entry, bound)?;
    let schema = entry.schema();

    let mut out = String::new();
    let col_name = |slot: usize| -> String {
        schema
            .column(bound.touched[slot])
            .map(|c| c.name.clone())
            .unwrap_or_else(|_| format!("${slot}"))
    };

    let _ = writeln!(
        out,
        "Plan for `{}` ({} rows)",
        bound.table,
        entry.rows.len()
    );
    let access = match path {
        AccessPath::Row => "Volcano sequential scan over the row layout".to_string(),
        AccessPath::Col => "column-at-a-time over the materialized columnar copy".to_string(),
        AccessPath::Rm => format!(
            "Relational Memory: ephemeral column group of {} columns ({} B/row packed)",
            bound.touched.len(),
            bound
                .touched
                .iter()
                .map(|&c| schema.column(c).map(|d| d.ty.width()).unwrap_or(0))
                .sum::<usize>()
        ),
    };
    let _ = writeln!(out, "  access: {path} — {access}");

    if !bound.preds.is_empty() {
        let preds: Vec<String> = bound
            .preds
            .iter()
            .map(|(slot, op, v)| format!("{} {op} {v}", col_name(*slot)))
            .collect();
        let _ = writeln!(out, "  filter: {}", preds.join(" AND "));
    }
    let items: Vec<String> = bound
        .items
        .iter()
        .map(|item| match item {
            OutputItem::Expr(e) => e.to_string(),
            OutputItem::Agg(f, e) => format!("{}({e})", f.name()),
        })
        .collect();
    let _ = writeln!(out, "  output: {}", items.join(", "));
    if !bound.group_by.is_empty() {
        let keys: Vec<String> = bound.group_by.iter().map(|&s| col_name(s)).collect();
        let _ = writeln!(out, "  group by: {}", keys.join(", "));
    }
    if !bound.order_by.is_empty() {
        let keys: Vec<String> = bound
            .order_by
            .iter()
            .map(|&(pos, desc)| format!("#{}{}", pos + 1, if desc { " DESC" } else { "" }))
            .collect();
        let _ = writeln!(out, "  order by: {}", keys.join(", "));
    }
    if let Some(limit) = bound.limit {
        let _ = writeln!(out, "  limit: {limit}");
    }

    let _ = writeln!(
        out,
        "  estimates: ROW {:.3} ms | COL {} | RM {:.3} ms",
        cost.row_ns / 1e6,
        cost.col_ns
            .map(|c| format!("{:.3} ms", c / 1e6))
            .unwrap_or_else(|| "unavailable (no columnar copy)".into()),
        cost.rm_ns / 1e6,
    );
    Ok(out)
}

/// Parse + bind + explain in one call.
pub fn explain_sql(sim: &SimConfig, catalog: &Catalog, sql: &str) -> Result<String> {
    let stmt = crate::parser::parse(sql)?;
    let bound = crate::bind::bind(catalog, &stmt)?;
    explain(sim, catalog, &bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::MemoryHierarchy;
    use fabric_types::{ColumnType, Schema, Value};
    use rowstore::RowTable;

    fn catalog() -> Catalog {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let schema = Schema::from_pairs(&[
            ("id", ColumnType::I64),
            ("qty", ColumnType::F64),
            ("region", ColumnType::FixedStr(1)),
        ]);
        let mut t = RowTable::create(&mut mem, schema, 8192).unwrap();
        for i in 0..8000i64 {
            t.load(
                &mut mem,
                &[Value::I64(i), Value::F64(i as f64), Value::Str("N".into())],
            )
            .unwrap();
        }
        let mut c = Catalog::new();
        c.register_rows("orders", t);
        c
    }

    #[test]
    fn explain_names_the_plan_pieces() {
        let c = catalog();
        let text = explain_sql(
            &SimConfig::zynq_a53(),
            &c,
            "SELECT region, sum(qty) FROM orders WHERE id < 10 \
             GROUP BY region ORDER BY 2 DESC LIMIT 5",
        )
        .unwrap();
        assert!(text.contains("Plan for `orders` (8000 rows)"), "{text}");
        assert!(text.contains("filter: id < 10"), "{text}");
        assert!(text.contains("group by: region"), "{text}");
        assert!(text.contains("order by: #2 DESC"), "{text}");
        assert!(text.contains("limit: 5"), "{text}");
        assert!(text.contains("estimates: ROW"), "{text}");
        assert!(text.contains("unavailable (no columnar copy)"), "{text}");
    }

    #[test]
    fn explain_reports_the_chosen_access() {
        let c = catalog();
        let text = explain_sql(&SimConfig::zynq_a53(), &c, "SELECT sum(qty) FROM orders").unwrap();
        // With no columnar copy, the fabric path wins scans.
        assert!(text.contains("access: RM"), "{text}");
        assert!(text.contains("ephemeral column group"), "{text}");
    }

    #[test]
    fn explain_propagates_bind_errors() {
        let c = catalog();
        assert!(explain_sql(&SimConfig::zynq_a53(), &c, "SELECT nope FROM orders").is_err());
        assert!(explain_sql(&SimConfig::zynq_a53(), &c, "SELECT id FROM missing").is_err());
    }
}
