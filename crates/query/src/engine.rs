//! The unified fabric engine: one object owning the simulated machine
//! (memory hierarchy + core count), the catalog, the fault-handling state,
//! and a plan cache — with a session API (`prepare` / `run` / `explain` /
//! `explain_analyze`) replacing the free-function sprawl that used to
//! thread those pieces through every call site.
//!
//! ```
//! use fabric_types::{ColumnType, Schema, Value};
//! use query::Engine;
//! use rowstore::RowTable;
//!
//! let mut engine = Engine::new(fabric_sim::SimConfig::zynq_a53());
//! let schema = Schema::from_pairs(&[("id", ColumnType::I64), ("qty", ColumnType::F64)]);
//! let mut t = RowTable::create(engine.mem(), schema, 16).unwrap();
//! for i in 0..10 {
//!     t.load(engine.mem(), &[Value::I64(i), Value::F64(i as f64)]).unwrap();
//! }
//! engine.register_rows("orders", t);
//!
//! let mut session = engine.session();
//! let out = session.run("SELECT sum(qty) FROM orders WHERE id < 5").unwrap();
//! assert_eq!(out.rows[0][0], Value::F64(10.0));
//! ```
//!
//! Every query runs through one resilient pipeline: the engine owns a
//! [`FaultContext`] (quiet by default, so fault handling is free until
//! faults are configured) and executes on however many simulated cores the
//! engine was given — morsel-parallel, with results bit-identical to a
//! single core.

use crate::analyze::{analyze, VerifiedQuery};
use crate::bind::{bind, BoundQuery};
use crate::catalog::Catalog;
use crate::cost::{choose_path_parallel, AccessPath, PathCost};
use crate::exec::opcache::{self, OpCache};
use crate::exec::{
    run_verified, CacheSlot, FaultContext, QueryOutput, RecordMeta, Resilience, Scratchpad,
};
use crate::explain::{
    analyze_paths_impl, render_analyze_report, render_latency_section, render_plan_for,
    render_recovery_section,
};
use crate::parser::parse;
use colstore::ColTable;
use durability::{DurabilityConfig, DurableImage};
use fabric_sim::{MemoryHierarchy, SimConfig};
use fabric_types::{Result, Schema};
use mvcc::{DurableStore, RecoveryReport};
use relmem::RmConfig;
use rowstore::RowTable;
use std::rc::Rc;

/// Plans the cache keeps per engine. Small on purpose: the cache exists to
/// make re-running a dashboard's query set free, not to be a buffer pool.
const PLAN_CACHE_CAP: usize = 16;

/// A parsed, bound, verified, and priced query, reusable across
/// executions — the typed handle [`Session::prepare`] returns. Running a
/// `&Prepared` skips the SQL-text cache entirely: the plan *and* its
/// operator-cache base signature travel with the handle, so repeated
/// execution re-hashes nothing. Cheap to clone (the plan body is shared).
#[derive(Clone)]
pub struct Prepared {
    plan: Rc<PreparedPlan>,
}

/// The former name of [`Prepared`], kept so existing call sites read on.
pub type PreparedQuery = Prepared;

struct PreparedPlan {
    sql: String,
    bound: BoundQuery,
    geometry: relmem::VerifiedGeometry,
    path: AccessPath,
    cost: PathCost,
    /// Path-independent operator-cache signature (plan shape + table +
    /// geometry + predicate constants), computed once at cold prepare.
    base_sig: u128,
}

impl Prepared {
    /// The SQL text this plan was prepared from.
    pub fn sql(&self) -> &str {
        &self.plan.sql
    }

    /// The access path the optimizer chose at prepare time.
    pub fn path(&self) -> AccessPath {
        self.plan.path
    }

    /// The per-path estimates the choice was based on.
    pub fn cost(&self) -> &PathCost {
        &self.plan.cost
    }

    /// The operator-cache key this plan executes under on `path`.
    pub fn cache_key(&self, path: AccessPath) -> u128 {
        opcache::keyed(self.plan.base_sig, path)
    }

    /// Rebuild the analyzer's verified-plan witness for execution.
    fn verified(&self) -> VerifiedQuery<'_> {
        VerifiedQuery::from_parts(&self.plan.bound, self.plan.geometry.clone())
    }
}

/// The fabric engine: simulated machine + catalog + fault state + plan
/// cache. Create one per simulated deployment; open [`Engine::session`] to
/// prepare and run queries.
pub struct Engine {
    mem: MemoryHierarchy,
    catalog: Catalog,
    faults: FaultContext,
    rm: RmConfig,
    /// MRU-first plan cache keyed by SQL text.
    cache: Vec<(String, Rc<PreparedPlan>)>,
    cache_hits: u64,
    cache_misses: u64,
    /// Signature-keyed operator cache: memoized stage outputs, shared by
    /// every session on this engine. Invalidated together with the plan
    /// cache — both are bound to the catalog contents and machine shape.
    op_cache: OpCache,
    /// Recovery reports from every [`Engine::open_recovered`] call, in
    /// order — the engine's record of which tables came back from a
    /// crash and whether the recovery was degraded.
    recoveries: Vec<(String, RecoveryReport)>,
    /// Sessions handed out so far; the next session gets this + 1 as its
    /// id, which scopes its metrics under `session.<id>.*`.
    sessions_opened: u64,
}

impl Engine {
    /// A single-core engine over `cfg` — behaviourally identical to the
    /// original serial executor.
    pub fn new(cfg: SimConfig) -> Self {
        Self::with_cores(cfg, 1)
    }

    /// An engine whose queries run morsel-parallel over `cores` simulated
    /// cores (private L1/prefetcher each, shared L2/DRAM/RM device).
    pub fn with_cores(cfg: SimConfig, cores: usize) -> Self {
        let mut mem = MemoryHierarchy::new(cfg);
        mem.set_core_count(cores.max(1));
        Engine {
            mem,
            catalog: Catalog::new(),
            faults: FaultContext::quiet(),
            rm: RmConfig::prototype(),
            cache: Vec::new(),
            cache_hits: 0,
            cache_misses: 0,
            op_cache: OpCache::default(),
            recoveries: Vec::new(),
            sessions_opened: 0,
        }
    }

    /// Change the core count. Plans stay valid (the path choice is priced
    /// per run), but the cache is cleared so cached costs match the new
    /// machine.
    pub fn set_cores(&mut self, cores: usize) {
        self.mem.set_core_count(cores.max(1));
        self.cache.clear();
        self.op_cache.clear();
    }

    /// Number of simulated cores queries run on.
    pub fn cores(&self) -> usize {
        self.mem.num_cores()
    }

    /// The simulated memory hierarchy — for loading tables, attaching
    /// trace recorders, and reading metrics.
    pub fn mem(&mut self) -> &mut MemoryHierarchy {
        &mut self.mem
    }

    /// Read-only view of the hierarchy (metrics, stats, clock).
    pub fn mem_ref(&self) -> &MemoryHierarchy {
        &self.mem
    }

    /// The catalog of registered tables.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Register a table with only the row-oriented base layout (the
    /// fabric-native configuration). Invalidates the plan cache — cached
    /// geometries are bound to the catalog contents at prepare time.
    pub fn register_rows(&mut self, name: impl Into<String>, rows: RowTable) {
        self.catalog.register_rows(name, rows);
        self.cache.clear();
        self.op_cache.clear();
    }

    /// Register a table with both layouts. Invalidates the plan cache.
    pub fn register(&mut self, name: impl Into<String>, rows: RowTable, cols: ColTable) {
        self.catalog.register(name, rows, cols);
        self.cache.clear();
        self.op_cache.clear();
    }

    /// Recover a crash-consistent store from the durable image that
    /// survived a crash ([`DurableStore::crash_image`]), register the
    /// recovered snapshot as a queryable row table under `name`, and
    /// return the live store (for continued writes) plus the recovery
    /// report. A degraded recovery — e.g. the newest checkpoint was torn
    /// and replay fell back to an older one — is surfaced via the
    /// `engine.degraded_opens` counter and a flight-recorder postmortem,
    /// but still opens: the recovered state is correct, just rebuilt the
    /// slow way.
    pub fn open_recovered(
        &mut self,
        name: impl Into<String>,
        user_schema: &Schema,
        capacity: usize,
        image: DurableImage,
        cfg: DurabilityConfig,
        checkpoint_every: u64,
    ) -> Result<(DurableStore, RecoveryReport)> {
        let name = name.into();
        let (store, report) = DurableStore::replay(
            &mut self.mem,
            user_schema.clone(),
            capacity,
            image,
            cfg,
            checkpoint_every,
        )?;
        // Materialize the recovered snapshot (visible user rows at the
        // watermark, physical order) into the catalog's row layout.
        let rows = store.snapshot_rows(&mut self.mem)?;
        let mut table = RowTable::create(&mut self.mem, user_schema.clone(), capacity.max(1))?;
        for row in &rows {
            table.load(&mut self.mem, row)?;
        }
        if report.degraded.is_some() {
            self.mem
                .metrics_mut()
                .counter_add("engine.degraded_opens", 1);
            self.mem
                .flight_dump_with("engine-degraded-open", report.to_json());
        }
        self.recoveries.push((name.clone(), report.clone()));
        self.catalog.register_rows(name, table);
        self.cache.clear();
        self.op_cache.clear();
        Ok((store, report))
    }

    /// Recovery reports from every [`Engine::open_recovered`], in call
    /// order: `(table name, report)`.
    pub fn recoveries(&self) -> &[(String, RecoveryReport)] {
        &self.recoveries
    }

    /// Replace the engine's fault-handling state (plan seed, retry policy,
    /// breaker). The default is a quiet context that injects nothing.
    pub fn set_fault_context(&mut self, ctx: FaultContext) {
        self.faults = ctx;
    }

    /// The engine's fault-handling state (fallback/breaker counters).
    pub fn fault_context(&self) -> &FaultContext {
        &self.faults
    }

    /// The RM device configuration queries are planned against.
    pub fn rm_config(&self) -> &RmConfig {
        &self.rm
    }

    /// `(hits, misses)` of the prepared-plan cache.
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        (self.cache_hits, self.cache_misses)
    }

    /// Drop every cached plan and memoized stage output.
    pub fn clear_plan_cache(&mut self) {
        self.cache.clear();
        self.op_cache.clear();
    }

    /// Drop memoized stage outputs while keeping cached plans.
    /// Measurement loops (benches timing repeated *execution*) call this
    /// between reps so every run re-earns its answer through the
    /// hierarchy; hit/miss counters survive.
    pub fn clear_op_cache(&mut self) {
        self.op_cache.clear();
    }

    /// `(hits, misses)` of the operator cache (memoized stage outputs).
    pub fn op_cache_stats(&self) -> (u64, u64) {
        self.op_cache.stats()
    }

    /// The operator cache itself (entry count, insertion counters).
    pub fn op_cache(&self) -> &OpCache {
        &self.op_cache
    }

    /// The engine-wide query log: one bounded, deterministic record per
    /// executed query (cold, cached, degraded, or recovered alike).
    pub fn querylog(&self) -> &fabric_sim::QueryLog {
        self.mem.querylog()
    }

    /// Aggregate the query log into a per-(class, path) workload report.
    pub fn workload_report(&self) -> fabric_sim::WorkloadReport {
        self.mem.querylog().workload_report()
    }

    /// The cost-calibration ledger: per-(table, geometry, path) observed
    /// relative error of the cost model, fed by every clean cold run.
    pub fn calib(&self) -> &fabric_sim::CalibLedger {
        self.mem.calib()
    }

    /// Open a session on this engine. Each session gets a stable numeric
    /// id (1, 2, …) and every query it executes records its latency both
    /// globally (`query.class.<class>.latency_cycles`) and under the
    /// session's own metric scope (`session.<id>.latency.<class>`).
    pub fn session(&mut self) -> Session<'_> {
        self.sessions_opened += 1;
        let id = self.sessions_opened;
        Session {
            engine: self,
            id,
            scratch: Scratchpad::new(),
        }
    }
}

/// A query session over an [`Engine`]: prepare once, run many times.
/// Owns a [`Scratchpad`] so every query it executes recycles the same
/// morsel buffers.
pub struct Session<'e> {
    engine: &'e mut Engine,
    id: u64,
    scratch: Scratchpad,
}

impl Session<'_> {
    /// This session's id (scopes its metrics under `session.<id>.*`).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Stage buffers this session's scratchpad has allocated so far —
    /// flat across repeated queries once the pool is warm.
    pub fn scratch_allocs(&self) -> u64 {
        self.scratch.allocs()
    }

    /// Stage-buffer takes served from the pool instead of a fresh
    /// allocation.
    pub fn scratch_reuses(&self) -> u64 {
        self.scratch.reuses()
    }

    /// Record one executed query's cycle-domain latency: into the global
    /// per-class histogram, into a cache-temperature-split histogram
    /// (`query.class.<class>.{cold,hit}.latency_cycles` — an op-cache hit
    /// is orders of magnitude cheaper than a cold run, and pooling the two
    /// made the headline percentiles meaningless), and into this session's
    /// metric scope. The headline p50/p95/p99 gauges the perf gate checks
    /// are fed from the *cold* histogram only; hits get their own gauge
    /// set. Recording never advances the simulated clock, so an
    /// instrumented run stays cycle-identical to an uninstrumented one.
    fn record_latency(
        mem: &mut MemoryHierarchy,
        session_id: u64,
        class: &str,
        elapsed: u64,
        cache_hit: bool,
    ) {
        let hist_key = format!("query.class.{class}.latency_cycles");
        mem.metrics_mut().observe(&hist_key, elapsed);
        let temp = if cache_hit { "hit" } else { "cold" };
        let temp_key = format!("query.class.{class}.{temp}.latency_cycles");
        mem.metrics_mut().observe(&temp_key, elapsed);
        if let Some(h) = mem.metrics().histogram(&temp_key) {
            let (p50, p95, p99) = (h.quantile(0.50), h.quantile(0.95), h.quantile(0.99));
            let reg = mem.metrics_mut();
            reg.gauge_set(&format!("query.class.{class}.{temp}.p50_cycles"), p50);
            reg.gauge_set(&format!("query.class.{class}.{temp}.p95_cycles"), p95);
            reg.gauge_set(&format!("query.class.{class}.{temp}.p99_cycles"), p99);
            if !cache_hit {
                // Headline percentiles track cold execution only.
                reg.gauge_set(&format!("query.class.{class}.p50_cycles"), p50);
                reg.gauge_set(&format!("query.class.{class}.p95_cycles"), p95);
                reg.gauge_set(&format!("query.class.{class}.p99_cycles"), p99);
            }
        }
        let mut scope = mem.metrics_mut().scoped(&format!("session.{session_id}"));
        scope.counter_add("queries", 1);
        scope.observe(&format!("latency.{class}"), elapsed);
    }

    /// Parse + bind + verify + price `sql`, consulting the engine's plan
    /// cache (keyed by SQL text, MRU, capacity [`PLAN_CACHE_CAP`]). A hit
    /// returns the cached plan unchanged, so a re-prepared query executes
    /// bit-identically to its cold first run.
    pub fn prepare(&mut self, sql: &str) -> Result<Prepared> {
        if let Some(i) = self.engine.cache.iter().position(|(k, _)| k == sql) {
            let entry = self.engine.cache.remove(i);
            self.engine.cache.insert(0, entry);
            self.engine.cache_hits += 1;
            self.engine
                .mem
                .metrics_mut()
                .counter_add("query.plan_cache.hits", 1);
            return Ok(Prepared {
                plan: Rc::clone(&self.engine.cache[0].1),
            });
        }
        let stmt = parse(sql)?;
        let bound = bind(&self.engine.catalog, &stmt)?;
        let entry = self.engine.catalog.get(&bound.table)?;
        let verified = analyze(entry, &bound, &self.engine.rm)?;
        let geometry = verified.geometry().clone();
        let (path, cost) = choose_path_parallel(
            self.engine.mem.config(),
            &self.engine.rm,
            entry,
            &bound,
            self.engine.mem.num_cores(),
        )?;
        let base_sig = opcache::plan_signature(&bound, entry.rows.len(), &format!("{geometry:?}"));
        let plan = Rc::new(PreparedPlan {
            sql: sql.to_string(),
            bound,
            geometry,
            path,
            cost,
            base_sig,
        });
        self.engine
            .cache
            .insert(0, (sql.to_string(), Rc::clone(&plan)));
        self.engine.cache.truncate(PLAN_CACHE_CAP);
        self.engine.cache_misses += 1;
        self.engine
            .mem
            .metrics_mut()
            .counter_add("query.plan_cache.misses", 1);
        Ok(Prepared { plan })
    }

    /// Prepare (or fetch from cache) and execute on the optimizer-chosen
    /// path, under the engine's fault policy.
    pub fn run(&mut self, sql: &str) -> Result<QueryOutput> {
        let prepared = self.prepare(sql)?;
        self.execute(&prepared)
    }

    /// Prepare and execute on an explicitly chosen path (engine
    /// comparisons / tests).
    pub fn run_on(&mut self, sql: &str, path: AccessPath) -> Result<QueryOutput> {
        let prepared = self.prepare(sql)?;
        self.execute_on(&prepared, path)
    }

    /// Execute a prepared query on its planned path.
    pub fn execute(&mut self, prepared: &Prepared) -> Result<QueryOutput> {
        self.execute_on(prepared, prepared.plan.path)
    }

    /// Execute a prepared query on `path`, through the engine's operator
    /// cache: the first run memoizes the stage output under the plan's
    /// signature and a repeat run replays it without touching the
    /// hierarchy (clean runs only — degraded/faulted runs are re-earned).
    pub fn execute_on(&mut self, prepared: &Prepared, path: AccessPath) -> Result<QueryOutput> {
        let Engine {
            ref mut mem,
            ref catalog,
            ref mut faults,
            ref mut op_cache,
            ref recoveries,
            ..
        } = *self.engine;
        let entry = catalog.get(&prepared.plan.bound.table)?;
        let verified = prepared.verified();
        // An RM-routed query under an armed fault plan bypasses the op
        // cache in both directions: a memoized result must not mask the
        // degradation/breaker behaviour the device is configured to
        // exhibit, and a lucky clean run under fire is not a stable
        // fact worth memoizing.
        let cache = if path == AccessPath::Rm && !faults.plan.config().is_quiet() {
            CacheSlot::None
        } else {
            CacheSlot::Keyed(op_cache, opcache::keyed(prepared.plan.base_sig, path))
        };
        // Cycle-domain latency: queries fork/join internally, so the
        // global-frontier delta around the run is the query's wall time.
        let t0 = mem.now();
        let out = run_verified(
            mem,
            entry,
            &verified,
            path,
            prepared.plan.cost,
            Resilience::Resilient(faults),
            cache,
            &mut self.scratch,
            RecordMeta {
                session: self.id,
                recovered_tables: recoveries.len() as u64,
            },
        )?;
        let elapsed = mem.now().saturating_sub(t0);
        Self::record_latency(
            mem,
            self.id,
            prepared.plan.bound.class(),
            elapsed,
            out.cache_hit,
        );
        mem.metrics_mut().gauge_set(
            "query.scratchpad.hwm_bytes",
            self.scratch.hwm_bytes() as f64,
        );
        Ok(out)
    }

    /// Verify and execute a hand-built [`BoundQuery`] on the
    /// optimizer-chosen path, under the engine's fault policy.
    ///
    /// Unlike [`Session::run`], the plan did not come from the parser, so
    /// nothing upstream vouches for it: it passes through the same
    /// [`analyze`] gate as every SQL statement, and a plan the analyzer
    /// rejects never reaches an executor. Bound plans carry no SQL text,
    /// so they bypass the plan cache.
    pub fn run_bound(&mut self, bound: &BoundQuery) -> Result<QueryOutput> {
        self.run_bound_impl(bound, None)
    }

    /// Verify and execute a hand-built [`BoundQuery`] on an explicitly
    /// chosen path (engine comparisons / tests). Verifies exactly like
    /// [`Session::run_bound`].
    pub fn run_bound_on(&mut self, bound: &BoundQuery, path: AccessPath) -> Result<QueryOutput> {
        self.run_bound_impl(bound, Some(path))
    }

    fn run_bound_impl(
        &mut self,
        bound: &BoundQuery,
        forced: Option<AccessPath>,
    ) -> Result<QueryOutput> {
        let Engine {
            ref mut mem,
            ref catalog,
            ref mut faults,
            ref rm,
            ref recoveries,
            ..
        } = *self.engine;
        let entry = catalog.get(&bound.table)?;
        let verified = analyze(entry, bound, rm)?;
        let (chosen, cost) = choose_path_parallel(mem.config(), rm, entry, bound, mem.num_cores())?;
        let t0 = mem.now();
        // Hand-built plans bypass both caches (no SQL text vouches for
        // them) but still recycle the session's scratch buffers.
        let out = run_verified(
            mem,
            entry,
            &verified,
            forced.unwrap_or(chosen),
            cost,
            Resilience::Resilient(faults),
            CacheSlot::None,
            &mut self.scratch,
            RecordMeta {
                session: self.id,
                recovered_tables: recoveries.len() as u64,
            },
        )?;
        let elapsed = mem.now().saturating_sub(t0);
        Self::record_latency(mem, self.id, bound.class(), elapsed, out.cache_hit);
        mem.metrics_mut().gauge_set(
            "query.scratchpad.hwm_bytes",
            self.scratch.hwm_bytes() as f64,
        );
        Ok(out)
    }

    /// Render the chosen plan and per-path estimates for `sql`.
    pub fn explain(&mut self, sql: &str) -> Result<String> {
        let prepared = self.prepare(sql)?;
        self.explain_prepared(&prepared)
    }

    /// Render the chosen plan and per-path estimates for an
    /// already-prepared query, without touching the SQL-text cache.
    pub fn explain_prepared(&mut self, prepared: &Prepared) -> Result<String> {
        let entry = self.engine.catalog.get(&prepared.plan.bound.table)?;
        render_plan_for(
            entry,
            &prepared.plan.bound,
            prepared.plan.path,
            &prepared.plan.cost,
        )
    }

    /// `EXPLAIN ANALYZE`: run `sql` on every available path and render
    /// estimated vs. measured cost plus the chosen path's per-phase and
    /// per-core breakdown.
    pub fn explain_analyze(&mut self, sql: &str) -> Result<String> {
        let prepared = self.prepare(sql)?;
        self.explain_analyze_prepared(&prepared)
    }

    /// [`Session::explain_analyze`] for an already-prepared query. The
    /// measurement runs bypass the operator cache — `EXPLAIN ANALYZE`
    /// exists to observe the real hierarchy, so a memoized replay would
    /// defeat its purpose.
    pub fn explain_analyze_prepared(&mut self, prepared: &Prepared) -> Result<String> {
        let entry = self.engine.catalog.get(&prepared.plan.bound.table)?;
        let header = render_plan_for(
            entry,
            &prepared.plan.bound,
            prepared.plan.path,
            &prepared.plan.cost,
        )?;
        let has_cols = entry.cols.is_some();
        let (_, reports, profile, cores, topdown, ops) = analyze_paths_impl(
            &mut self.engine.mem,
            &self.engine.catalog,
            &prepared.plan.bound,
        )?;
        let mut text = render_analyze_report(
            &header, has_cols, &reports, &profile, &cores, &topdown, &ops,
        )?;
        text.push_str(&render_latency_section(self.engine.mem.metrics())?);
        text.push_str(&render_recovery_section(self.engine.recoveries())?);
        // Operator-cache provenance: the signature this plan executes
        // under on its chosen path, and the engine-wide cache state.
        let oc = &self.engine.op_cache;
        let (hits, misses) = oc.stats();
        text.push_str(&format!(
            "  op-cache: key {:032x} (chosen path)  entries {}  bytes {}  hits {}  misses {}  insertions {}  evictions {}\n",
            prepared.cache_key(prepared.plan.path),
            oc.len(),
            oc.bytes(),
            hits,
            misses,
            oc.insertions(),
            oc.evictions(),
        ));
        text.push_str(&format!(
            "  scratchpad: allocs {}  reuses {}  hwm {} B\n",
            self.scratch.allocs(),
            self.scratch.reuses(),
            self.scratch.hwm_bytes(),
        ));
        Ok(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_types::{ColumnType, Schema, Value};

    fn engine_with_data(cores: usize) -> Engine {
        let mut engine = Engine::with_cores(SimConfig::zynq_a53(), cores);
        let schema = Schema::from_pairs(&[
            ("id", ColumnType::I64),
            ("grp", ColumnType::FixedStr(1)),
            ("qty", ColumnType::F64),
        ]);
        let mut rt = RowTable::create(engine.mem(), schema.clone(), 16384).unwrap();
        let mut ct = ColTable::create(engine.mem(), schema, 16384).unwrap();
        for i in 0..10_000i64 {
            let row = vec![
                Value::I64(i),
                Value::Str(if i % 3 == 0 { "A" } else { "B" }.into()),
                Value::F64(i as f64),
            ];
            rt.load(engine.mem(), &row).unwrap();
            ct.load(engine.mem(), &row).unwrap();
        }
        engine.register("t", rt, ct);
        engine
    }

    #[test]
    fn session_runs_queries_end_to_end() {
        let mut engine = engine_with_data(1);
        let out = engine
            .session()
            .run("SELECT grp, count(*), sum(qty) FROM t WHERE id < 6000 GROUP BY grp")
            .unwrap();
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0][0], Value::Str("A".into()));
        assert_eq!(out.rows[0][1], Value::I64(2000));
        assert_eq!(out.cores.len(), 1);
        assert_eq!(out.cores[0].idle_cycles, 0, "one core never waits");
    }

    #[test]
    fn plan_cache_hits_return_the_same_plan_and_answer() {
        let mut engine = engine_with_data(2);
        let sql = "SELECT sum(qty) FROM t WHERE id < 5000";
        let mut s = engine.session();
        let cold = s.prepare(sql).unwrap();
        let a = s.execute(&cold).unwrap();
        let warm = s.prepare(sql).unwrap();
        assert!(
            Rc::ptr_eq(&cold.plan, &warm.plan),
            "hit must share the plan"
        );
        let b = s.execute(&warm).unwrap();
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.path, b.path);
        // The repeat run was an operator-cache hit replaying the cold
        // run's stage output — identical rows, no hierarchy traffic.
        assert_eq!(b.cores.iter().map(|c| c.bytes_read).sum::<u64>(), 0);
        assert_eq!(engine.plan_cache_stats(), (1, 1));
        assert_eq!(engine.op_cache_stats(), (1, 1));
        assert_eq!(
            engine.mem_ref().metrics().counter("query.plan_cache.hits"),
            1
        );
        assert_eq!(engine.mem_ref().metrics().counter("query.opcache.hits"), 1);
    }

    #[test]
    fn prepared_handle_carries_the_op_cache_key() {
        let mut engine = engine_with_data(1);
        let sql = "SELECT sum(qty) FROM t WHERE id < 5000";
        let mut s = engine.session();
        let p = s.prepare(sql).unwrap();
        let k_row = p.cache_key(AccessPath::Row);
        assert_ne!(k_row, p.cache_key(AccessPath::Col), "path-keyed");
        // A warm prepare (MRU text hit) resolves to the identical
        // signature — the handle, not the SQL text, is the cache identity.
        let warm = s.prepare(sql).unwrap();
        assert_eq!(warm.cache_key(AccessPath::Row), k_row);
        // Re-registering the table clears both caches and re-preparing
        // over changed contents yields a different signature.
        let out = s.execute_on(&p, AccessPath::Row).unwrap();
        assert_eq!(engine.op_cache().len(), 1);
        let schema = Schema::from_pairs(&[
            ("id", ColumnType::I64),
            ("grp", ColumnType::FixedStr(1)),
            ("qty", ColumnType::F64),
        ]);
        let mut rt = RowTable::create(engine.mem(), schema.clone(), 64).unwrap();
        let mut ct = ColTable::create(engine.mem(), schema, 64).unwrap();
        for i in 0..10i64 {
            let row = vec![Value::I64(i), Value::Str("A".into()), Value::F64(i as f64)];
            rt.load(engine.mem(), &row).unwrap();
            ct.load(engine.mem(), &row).unwrap();
        }
        engine.register("t", rt, ct);
        assert!(engine.op_cache().is_empty(), "register clears the op cache");
        let p2 = engine.session().prepare(sql).unwrap();
        assert_ne!(
            p2.cache_key(AccessPath::Row),
            k_row,
            "new table contents, new signature"
        );
        drop(out);
    }

    #[test]
    fn plan_cache_is_bounded_and_mru() {
        let mut engine = engine_with_data(1);
        let mut s = engine.session();
        for i in 0..40 {
            s.prepare(&format!("SELECT id FROM t WHERE id < {i}"))
                .unwrap();
        }
        assert!(engine.cache.len() <= PLAN_CACHE_CAP);
        // The most recent statement is still cached.
        let (h0, _) = engine.plan_cache_stats();
        engine
            .session()
            .prepare("SELECT id FROM t WHERE id < 39")
            .unwrap();
        assert_eq!(engine.plan_cache_stats().0, h0 + 1);
    }

    #[test]
    fn multicore_session_is_bit_identical_to_single_core() {
        let sql = "SELECT grp, sum(qty), avg(qty), min(id), max(id) FROM t \
                   WHERE id < 9000 GROUP BY grp ORDER BY 2 DESC";
        let baseline = engine_with_data(1).session().run(sql).unwrap();
        for cores in [2, 4] {
            let mut engine = engine_with_data(cores);
            let out = engine.session().run(sql).unwrap();
            assert_eq!(out.rows, baseline.rows, "{cores}-core rows must match");
            assert_eq!(out.cores.len(), cores);
            // Attribution books balance on every core.
            let elapsed = out.cores[0].busy_cycles + out.cores[0].idle_cycles;
            for a in &out.cores {
                assert_eq!(a.busy_cycles + a.idle_cycles, elapsed, "{a:?}");
                assert_eq!(
                    a.busy_cycles,
                    a.cpu_cycles + a.stall_cycles + a.mem_lat_cycles
                );
            }
            assert!(
                out.cores.iter().filter(|a| a.busy_cycles > 0).count() > 1,
                "work must actually spread across cores"
            );
        }
    }

    #[test]
    fn registering_a_table_invalidates_cached_plans() {
        let mut engine = engine_with_data(1);
        engine.session().prepare("SELECT id FROM t").unwrap();
        assert_eq!(engine.cache.len(), 1);
        let schema = Schema::from_pairs(&[("x", ColumnType::I64)]);
        let t2 = RowTable::create(engine.mem(), schema, 4).unwrap();
        engine.register_rows("u", t2);
        assert!(engine.cache.is_empty());
    }

    #[test]
    fn open_recovered_registers_the_surviving_snapshot() {
        // Build a durable store elsewhere, crash it, and open the
        // survivors on a fresh engine.
        let schema = Schema::from_pairs(&[("id", ColumnType::I64), ("qty", ColumnType::F64)]);
        let mut m = MemoryHierarchy::new(SimConfig::zynq_a53());
        let mut store =
            DurableStore::create(&mut m, schema.clone(), 64, DurabilityConfig::quiet(5), 0)
                .unwrap();
        for i in 0..5i64 {
            let mut t = store.begin();
            t.insert(vec![Value::I64(i), Value::F64(i as f64 * 2.0)]);
            store.commit(&mut m, t).unwrap();
        }
        let image = store.crash_image();

        let mut engine = Engine::new(SimConfig::zynq_a53());
        let (survivor, report) = engine
            .open_recovered("orders", &schema, 64, image, DurabilityConfig::quiet(6), 0)
            .unwrap();
        assert_eq!(report.commits_replayed, 5);
        assert_eq!(report.degraded, None);
        assert_eq!(survivor.snapshot_ts(), report.watermark);
        assert_eq!(engine.recoveries().len(), 1);
        assert_eq!(engine.recoveries()[0].0, "orders");
        let out = engine
            .session()
            .run("SELECT count(*), sum(qty) FROM orders")
            .unwrap();
        assert_eq!(out.rows[0][0], Value::I64(5));
        assert_eq!(out.rows[0][1], Value::F64(20.0));
    }

    #[test]
    fn sessions_record_scoped_latency_histograms() {
        let mut engine = engine_with_data(1);
        {
            let mut s = engine.session();
            assert_eq!(s.id(), 1);
            s.run("SELECT grp, count(*) FROM t GROUP BY grp").unwrap(); // q1
            s.run("SELECT sum(qty) FROM t WHERE id < 100").unwrap(); // q6
            s.run("SELECT id FROM t WHERE id < 10").unwrap(); // scan
        }
        {
            let mut s2 = engine.session();
            assert_eq!(s2.id(), 2);
            s2.run("SELECT sum(qty) FROM t WHERE id < 100").unwrap();
        }
        let m = engine.mem_ref().metrics();
        assert_eq!(m.counter("session.1.queries"), 3);
        assert_eq!(m.counter("session.2.queries"), 1);
        for class in ["q1", "q6", "scan"] {
            let h = m
                .histogram(&format!("query.class.{class}.latency_cycles"))
                .unwrap_or_else(|| panic!("missing {class} histogram"));
            assert!(h.count() >= 1);
            assert!(h.sum() > 0, "queries cost simulated cycles");
            let p50 = m.gauge(&format!("query.class.{class}.p50_cycles")).unwrap();
            let p99 = m.gauge(&format!("query.class.{class}.p99_cycles")).unwrap();
            assert!(p50 > 0.0 && p99 >= p50, "{class}: p50 {p50} p99 {p99}");
        }
        // The q6 class pooled both sessions' runs globally…
        assert_eq!(
            m.histogram("query.class.q6.latency_cycles")
                .unwrap()
                .count(),
            2
        );
        // …while the per-session subtrees stayed separate.
        let snap = m.snapshot();
        assert_eq!(snap.subtree("session.1").histograms["latency.q6"].count, 1);
        assert_eq!(snap.subtree("session.2").histograms["latency.q6"].count, 1);
    }

    #[test]
    fn explain_analyze_appends_latency_and_recovery_sections() {
        let schema = Schema::from_pairs(&[("id", ColumnType::I64), ("qty", ColumnType::F64)]);
        let mut m = MemoryHierarchy::new(SimConfig::zynq_a53());
        let mut store =
            DurableStore::create(&mut m, schema.clone(), 64, DurabilityConfig::quiet(5), 0)
                .unwrap();
        for i in 0..4i64 {
            let mut t = store.begin();
            t.insert(vec![Value::I64(i), Value::F64(i as f64)]);
            store.commit(&mut m, t).unwrap();
        }
        let image = store.crash_image();
        let mut engine = Engine::new(SimConfig::zynq_a53());
        engine
            .open_recovered("orders", &schema, 64, image, DurabilityConfig::quiet(6), 0)
            .unwrap();
        let mut s = engine.session();
        s.run("SELECT sum(qty) FROM orders").unwrap();
        let text = s.explain_analyze("SELECT sum(qty) FROM orders").unwrap();
        assert!(text.contains("latency (cycle-domain"), "{text}");
        assert!(text.contains("q6 "), "{text}");
        assert!(text.contains("recovered tables:"), "{text}");
        assert!(text.contains("`orders`  watermark 4  commits 4"), "{text}");
    }

    #[test]
    fn explain_and_explain_analyze_render_through_the_session() {
        let mut engine = engine_with_data(2);
        let text = engine.session().explain("SELECT sum(qty) FROM t").unwrap();
        assert!(text.contains("Plan for `t`"), "{text}");
        let text = engine
            .session()
            .explain_analyze("SELECT sum(qty) FROM t WHERE id < 2000")
            .unwrap();
        assert!(text.contains("analyze:"), "{text}");
        assert!(text.contains("cores (chosen path):"), "{text}");
        assert!(text.contains("core 0"), "{text}");
        assert!(text.contains("top-down (chosen path):"), "{text}");
    }
}
