//! A small SQL front end with a layout-aware optimizer over the three
//! access paths (ROW / COL / RM) — the software stack of paper §III-B.
//!
//! The paper's observation: with a Relational Fabric, the optimizer no
//! longer *searches* a combinatorial space of physical designs — it
//! *constructs* the fastest plan, because any column group is reachable
//! on the fly. This crate demonstrates exactly that:
//!
//! * [`lexer`] / [`parser`] accept a SQL subset
//!   (`SELECT expr-or-agg, … FROM t [WHERE conj] [GROUP BY cols]`);
//! * [`bind`] resolves names against a [`catalog::Catalog`] into a typed
//!   logical plan;
//! * [`analyze`](mod@analyze) verifies every bound plan before execution
//!   (slot ranges, predicate/aggregate types, ephemeral-geometry admission)
//!   and returns structured diagnostics instead of panicking;
//! * [`cost`] prices the plan on each access path with a model mirroring
//!   the calibrated engine behaviours (movement + per-row compute);
//! * [`exec`] runs the plan on the chosen path (plus ORDER BY / LIMIT
//!   post-processing) and returns identical results regardless of path;
//! * [`explain`](mod@explain) renders the chosen plan and the per-path
//!   estimates; `EXPLAIN ANALYZE` ([`explain_analyze`]) additionally runs
//!   the query on every available path and reports estimated vs. measured
//!   cycles and bytes — the cost model held accountable;
//! * [`engine`] wraps all of the above in one object: [`Engine`] owns the
//!   simulated machine (hierarchy + core count), catalog, fault state, and
//!   a plan cache, and [`Session`] exposes `prepare` / `run` / `explain` /
//!   `explain_analyze`. Queries execute morsel-driven across however many
//!   simulated cores the engine has, with results bit-identical to a
//!   single core.
//!
//! The free functions ([`run`], [`execute`], [`execute_on`],
//! [`execute_resilient`]) remain as deprecated shims; new code should go
//! through [`Engine`].

pub mod analyze;
pub mod bind;
pub mod catalog;
pub mod cost;
pub mod engine;
pub mod exec;
pub mod explain;
pub mod lexer;
pub mod parser;

pub use analyze::{analyze, AnalysisError, PlanDiagnostic, VerifiedQuery};
pub use bind::{BoundQuery, OutputItem};
pub use catalog::Catalog;
pub use cost::{choose_path, choose_path_parallel, AccessPath, PathCost};
pub use engine::{Engine, PreparedQuery, Session};
#[allow(deprecated)]
pub use exec::{execute, execute_on, execute_resilient};
pub use exec::{CoreAttribution, FaultContext, PhaseProfile, QueryOutput, MORSEL_ROWS};
pub use explain::{
    analyze_paths, explain, explain_analyze, explain_analyze_sql, explain_sql, PathReport,
};

use fabric_sim::MemoryHierarchy;
use fabric_types::Result;

/// One-stop API: parse, bind, optimize, execute.
///
/// Deprecated: build an [`Engine`] and use [`Session::run`], which adds
/// plan caching, fault handling, and multi-core execution:
///
/// ```
/// use fabric_types::{ColumnType, Schema, Value};
/// use query::Engine;
/// use rowstore::RowTable;
///
/// let mut engine = Engine::new(fabric_sim::SimConfig::zynq_a53());
/// let schema = Schema::from_pairs(&[("id", ColumnType::I64), ("qty", ColumnType::F64)]);
/// let mut t = RowTable::create(engine.mem(), schema, 16).unwrap();
/// for i in 0..10 {
///     t.load(engine.mem(), &[Value::I64(i), Value::F64(i as f64)]).unwrap();
/// }
/// engine.register_rows("orders", t);
///
/// let out = engine.session().run("SELECT sum(qty) FROM orders WHERE id < 5").unwrap();
/// assert_eq!(out.rows[0][0], Value::F64(10.0));
/// ```
#[deprecated(note = "use `query::Engine` and `Session::run` instead")]
pub fn run(mem: &mut MemoryHierarchy, catalog: &Catalog, sql: &str) -> Result<QueryOutput> {
    run_impl(mem, catalog, sql)
}

pub(crate) fn run_impl(
    mem: &mut MemoryHierarchy,
    catalog: &Catalog,
    sql: &str,
) -> Result<QueryOutput> {
    let stmt = parser::parse(sql)?;
    let bound = bind::bind(catalog, &stmt)?;
    exec::execute_impl(mem, catalog, &bound)
}
