//! A small SQL front end with a layout-aware optimizer over the three
//! access paths (ROW / COL / RM) — the software stack of paper §III-B.
//!
//! The paper's observation: with a Relational Fabric, the optimizer no
//! longer *searches* a combinatorial space of physical designs — it
//! *constructs* the fastest plan, because any column group is reachable
//! on the fly. This crate demonstrates exactly that:
//!
//! * [`lexer`] / [`parser`] accept a SQL subset
//!   (`SELECT expr-or-agg, … FROM t [WHERE conj] [GROUP BY cols]`);
//! * [`bind`] resolves names against a [`catalog::Catalog`] into a typed
//!   logical plan;
//! * [`analyze`](mod@analyze) verifies every bound plan before execution
//!   (slot ranges, predicate/aggregate types, ephemeral-geometry admission)
//!   and returns structured diagnostics instead of panicking;
//! * [`cost`] prices the plan on each access path with a model mirroring
//!   the calibrated engine behaviours (movement + per-row compute);
//! * [`exec`] lowers the plan to a staged operator DAG and runs it on the
//!   chosen path (plus ORDER BY / LIMIT post-processing), returning
//!   identical results regardless of path; stage buffers recycle through
//!   a per-session [`Scratchpad`], and clean stage outputs memoize in a
//!   signature-keyed [`OpCache`];
//! * [`explain`](mod@explain) renders the chosen plan and the per-path
//!   estimates; `EXPLAIN ANALYZE` ([`explain_analyze`]) additionally runs
//!   the query on every available path and reports estimated vs. measured
//!   cycles and bytes — the cost model held accountable;
//! * [`engine`] wraps all of the above in one object: [`Engine`] owns the
//!   simulated machine (hierarchy + core count), catalog, fault state,
//!   plan cache, and operator cache, and [`Session`] exposes `prepare` /
//!   `run` / `explain` / `explain_analyze`. Queries execute morsel-driven
//!   across however many simulated cores the engine has, with results
//!   bit-identical to a single core.
//!
//! All execution goes through [`Engine`]; the former free-function entry
//! points (`run`, `execute`, `execute_on`, `execute_resilient`) are gone.

pub mod analyze;
pub mod bind;
pub mod catalog;
pub mod cost;
pub mod engine;
pub mod exec;
pub mod explain;
pub mod lexer;
pub mod parser;

pub use analyze::{analyze, AnalysisError, PlanDiagnostic, VerifiedQuery};
pub use bind::{BoundQuery, OutputItem};
pub use catalog::Catalog;
pub use cost::{
    choose_path, choose_path_parallel, split_path_cost, AccessPath, OpEstimate, PathCost,
};
pub use engine::{Engine, Prepared, PreparedQuery, Session};
pub use exec::{
    BufferKind, BufferRef, CoreAttribution, FaultContext, OpCache, OpReport, PhaseProfile,
    QueryExecutor, QueryOutput, Scratchpad, MORSEL_ROWS,
};
pub use explain::{
    analyze_paths, explain, explain_analyze, explain_analyze_sql, explain_sql, PathReport,
};

/// The engine-facing surface in one import: the [`Engine`]/[`Session`]
/// lifecycle, the [`Prepared`] handle, execution outputs, and the staged
/// executor's public types ([`QueryExecutor`], [`Scratchpad`],
/// [`BufferRef`], [`OpCache`]). Operator *construction* stays inside this
/// crate (lint rule `exec-internals`); the prelude exposes everything a
/// host needs to drive it.
pub mod prelude {
    pub use crate::engine::{Engine, Prepared, PreparedQuery, Session};
    pub use crate::exec::{
        BufferKind, BufferRef, CoreAttribution, FaultContext, OpCache, OpReport, PhaseProfile,
        QueryExecutor, QueryOutput, Scratchpad, MORSEL_ROWS,
    };
    pub use crate::explain::{explain_sql, PathReport};
    pub use crate::{AccessPath, BoundQuery, Catalog, PathCost};
}

#[cfg(test)]
pub(crate) fn run_impl(
    mem: &mut fabric_sim::MemoryHierarchy,
    catalog: &Catalog,
    sql: &str,
) -> fabric_types::Result<QueryOutput> {
    let stmt = parser::parse(sql)?;
    let bound = bind::bind(catalog, &stmt)?;
    exec::execute_impl(mem, catalog, &bound)
}
