//! The catalog: named tables in their physical layouts.
//!
//! Under a Relational Fabric only the row layout is mandatory — the COL
//! copy is optional and exists here so the optimizer can be demonstrated
//! choosing between genuine alternatives (and to show what fabric
//! deployments get to delete).

use colstore::ColTable;
use fabric_types::{FabricError, Result, Schema};
use rowstore::RowTable;
use std::collections::BTreeMap;

/// A registered table.
pub struct TableEntry {
    pub rows: RowTable,
    /// Optional materialized columnar copy (legacy-system baggage).
    pub cols: Option<ColTable>,
}

impl TableEntry {
    pub fn schema(&self) -> &Schema {
        self.rows.schema()
    }
}

/// Named tables. Keyed by a `BTreeMap` so every traversal (name listing,
/// registry export) is in lexicographic order on any core count — the
/// catalog feeds result-affecting paths and must stay hash-order-free
/// (fabric-lint rule `nondeterministic-core`).
#[derive(Default)]
pub struct Catalog {
    tables: BTreeMap<String, TableEntry>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog {
            tables: BTreeMap::new(),
        }
    }

    /// Register a table with only the row-oriented base layout (the
    /// fabric-native configuration).
    pub fn register_rows(&mut self, name: impl Into<String>, rows: RowTable) {
        self.tables
            .insert(name.into(), TableEntry { rows, cols: None });
    }

    /// Register a table with both layouts.
    pub fn register(&mut self, name: impl Into<String>, rows: RowTable, cols: ColTable) {
        self.tables.insert(
            name.into(),
            TableEntry {
                rows,
                cols: Some(cols),
            },
        );
    }

    pub fn get(&self, name: &str) -> Result<&TableEntry> {
        self.tables
            .get(name)
            .ok_or_else(|| FabricError::Sql(format!("unknown table `{name}`")))
    }

    pub fn names(&self) -> Vec<&str> {
        // BTreeMap iterates in key order; no sort needed.
        self.tables.keys().map(|s| s.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::{MemoryHierarchy, SimConfig};
    use fabric_types::ColumnType;

    #[test]
    fn register_and_lookup() {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let schema = Schema::uniform(2, ColumnType::I64);
        let t = RowTable::create(&mut mem, schema, 4).unwrap();
        let mut c = Catalog::new();
        c.register_rows("t", t);
        assert!(c.get("t").is_ok());
        assert!(c.get("t").unwrap().cols.is_none());
        assert!(c.get("nope").is_err());
        assert_eq!(c.names(), vec!["t"]);
    }
}
