//! Pre-execution plan verification.
//!
//! Every bound plan passes through [`analyze`] before any executor touches
//! simulated memory. The analyzer re-derives, from the plan alone, every
//! invariant the execution paths rely on — and reports violations as
//! structured [`PlanDiagnostic`]s instead of letting them surface as slot
//! panics, arena faults, or silent wrong answers deep inside an engine.
//!
//! The checks, in order:
//!
//! 1. **projectivity sanity** — the touched-column list contains no
//!    duplicates and no ids outside the schema (a duplicate would make two
//!    slots alias one column; an out-of-range id cannot be scanned at all);
//! 2. **slot ranges** — predicates, output expressions, GROUP BY, and
//!    ORDER BY only reference slots/positions that exist;
//! 3. **type checking** — predicate literals are comparable with their
//!    column (strings only against `FixedStr`, numerics only against
//!    numerics), arithmetic only ranges over numeric columns, and `SUM` /
//!    `AVG` aggregate numeric inputs;
//! 4. **geometry verification** — the ephemeral-variable geometry the RM
//!    path would configure is built and admitted against the device
//!    configuration ([`relmem::VerifiedGeometry`]): column-group offsets and
//!    widths inside the row, non-overlapping destination ranges, and output
//!    rows that fit the device's staging-buffer/batch layout.
//!
//! The result is a [`VerifiedQuery`] — the only plan type the executors in
//! [`crate::exec`] accept, so an unverified plan cannot reach them by
//! construction.

use crate::bind::{BoundQuery, OutputItem};
use crate::catalog::TableEntry;
use fabric_types::{AggFunc, ColumnId, Expr, FabricError, Schema, Value};
use relmem::{RmConfig, VerifiedGeometry};
use std::fmt;

/// One structured finding about a bound plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanDiagnostic {
    /// A touched-column id does not exist in the table schema.
    ProjectionColumnOutOfRange { column: ColumnId, columns: usize },
    /// The same column id appears twice in the touched list.
    DuplicateProjectionColumn { column: ColumnId },
    /// A slot reference (predicate / expression / GROUP BY) is outside the
    /// touched list.
    SlotOutOfRange {
        context: &'static str,
        slot: usize,
        slots: usize,
    },
    /// A predicate compares a column with a literal of an incomparable type.
    PredicateTypeMismatch {
        column: String,
        column_type: String,
        literal_type: String,
    },
    /// `SUM` / `AVG` over a non-numeric input.
    AggregateTypeMismatch {
        func: &'static str,
        column: String,
        column_type: String,
    },
    /// Arithmetic over a non-numeric column.
    NonNumericArithmetic { column: String, column_type: String },
    /// An ORDER BY key points past the output row.
    OrderByOutOfRange { position: usize, arity: usize },
    /// The RM-path geometry failed device admission (bounds, overlap, or
    /// buffer-fit); the reason is the device's own rejection message.
    GeometryRejected { reason: String },
}

impl fmt::Display for PlanDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanDiagnostic::ProjectionColumnOutOfRange { column, columns } => {
                write!(
                    f,
                    "projected column id {column} out of range (schema has {columns})"
                )
            }
            PlanDiagnostic::DuplicateProjectionColumn { column } => {
                write!(f, "column id {column} projected more than once")
            }
            PlanDiagnostic::SlotOutOfRange {
                context,
                slot,
                slots,
            } => {
                write!(
                    f,
                    "{context} references slot {slot}, but only {slots} are touched"
                )
            }
            PlanDiagnostic::PredicateTypeMismatch {
                column,
                column_type,
                literal_type,
            } => {
                write!(
                    f,
                    "predicate compares `{column}` ({column_type}) with {literal_type}"
                )
            }
            PlanDiagnostic::AggregateTypeMismatch {
                func,
                column,
                column_type,
            } => {
                write!(f, "{func}() over non-numeric `{column}` ({column_type})")
            }
            PlanDiagnostic::NonNumericArithmetic {
                column,
                column_type,
            } => {
                write!(f, "arithmetic over non-numeric `{column}` ({column_type})")
            }
            PlanDiagnostic::OrderByOutOfRange { position, arity } => {
                write!(
                    f,
                    "ORDER BY position {position} out of range for {arity} output columns"
                )
            }
            PlanDiagnostic::GeometryRejected { reason } => {
                write!(f, "ephemeral geometry rejected: {reason}")
            }
        }
    }
}

/// All findings for one plan; returned when verification fails.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisError {
    pub diagnostics: Vec<PlanDiagnostic>,
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan rejected:")?;
        for d in &self.diagnostics {
            write!(f, " [{d}]")?;
        }
        Ok(())
    }
}

impl std::error::Error for AnalysisError {}

impl From<AnalysisError> for FabricError {
    fn from(e: AnalysisError) -> Self {
        FabricError::Sql(e.to_string())
    }
}

/// A plan that passed every check in [`analyze`]. The executors only accept
/// this type; its fields are private so the analyzer is the sole source.
#[derive(Debug)]
pub struct VerifiedQuery<'a> {
    bound: &'a BoundQuery,
    geometry: VerifiedGeometry,
}

impl<'a> VerifiedQuery<'a> {
    /// Reassemble a verified plan from parts that came out of [`analyze`]
    /// (the plan cache stores the owned pieces of a verified plan and
    /// rebuilds the witness per execution). Crate-private so the analyzer
    /// remains the only original source of verified plans.
    pub(crate) fn from_parts(bound: &'a BoundQuery, geometry: VerifiedGeometry) -> Self {
        VerifiedQuery { bound, geometry }
    }

    /// The underlying bound plan.
    pub fn bound(&self) -> &BoundQuery {
        self.bound
    }

    /// The device-admitted geometry for the RM access path.
    pub fn geometry(&self) -> &VerifiedGeometry {
        &self.geometry
    }
}

/// Verify `bound` against `entry`'s schema and the RM device configuration.
pub fn analyze<'a>(
    entry: &TableEntry,
    bound: &'a BoundQuery,
    rm: &RmConfig,
) -> Result<VerifiedQuery<'a>, AnalysisError> {
    let schema = entry.schema();
    let mut diags = Vec::new();

    check_projectivity(schema, bound, &mut diags);
    check_predicates(schema, bound, &mut diags);
    check_items(schema, bound, &mut diags);
    check_grouping_and_order(bound, &mut diags);

    // Geometry construction needs a sane touched list; skip it (rather than
    // report cascading noise) when projectivity already failed.
    let geometry = if diags.is_empty() {
        match entry
            .rows
            .geometry(&bound.touched)
            .and_then(|g| VerifiedGeometry::new(rm, g))
        {
            Ok(g) => Some(g),
            Err(e) => {
                diags.push(PlanDiagnostic::GeometryRejected {
                    reason: e.to_string(),
                });
                None
            }
        }
    } else {
        None
    };

    match geometry {
        Some(geometry) if diags.is_empty() => Ok(VerifiedQuery { bound, geometry }),
        _ => Err(AnalysisError { diagnostics: diags }),
    }
}

fn check_projectivity(schema: &Schema, bound: &BoundQuery, diags: &mut Vec<PlanDiagnostic>) {
    for (i, &col) in bound.touched.iter().enumerate() {
        if col >= schema.len() {
            diags.push(PlanDiagnostic::ProjectionColumnOutOfRange {
                column: col,
                columns: schema.len(),
            });
        }
        if bound.touched[..i].contains(&col) {
            diags.push(PlanDiagnostic::DuplicateProjectionColumn { column: col });
        }
    }
}

/// Name and type of the column behind `slot`, when resolvable.
fn slot_column<'a>(
    schema: &'a Schema,
    bound: &BoundQuery,
    slot: usize,
) -> Option<&'a fabric_types::ColumnDef> {
    bound
        .touched
        .get(slot)
        .and_then(|&col| schema.column(col).ok())
}

fn check_predicates(schema: &Schema, bound: &BoundQuery, diags: &mut Vec<PlanDiagnostic>) {
    for (slot, _, lit) in &bound.preds {
        if *slot >= bound.touched.len() {
            diags.push(PlanDiagnostic::SlotOutOfRange {
                context: "predicate",
                slot: *slot,
                slots: bound.touched.len(),
            });
            continue;
        }
        let Some(def) = slot_column(schema, bound, *slot) else {
            continue;
        };
        let lit_is_str = matches!(lit, Value::Str(_));
        if lit_is_str != matches!(def.ty, fabric_types::ColumnType::FixedStr(_)) {
            diags.push(PlanDiagnostic::PredicateTypeMismatch {
                column: def.name.clone(),
                column_type: def.ty.name(),
                literal_type: lit.column_type().name(),
            });
        }
    }
}

fn check_items(schema: &Schema, bound: &BoundQuery, diags: &mut Vec<PlanDiagnostic>) {
    for item in &bound.items {
        let (expr, agg): (&Expr, Option<AggFunc>) = match item {
            OutputItem::Expr(e) => (e, None),
            OutputItem::Agg(f, e) => (e, Some(*f)),
        };
        let mut slots = Vec::new();
        expr.collect_columns(&mut slots);
        for slot in slots {
            if slot >= bound.touched.len() {
                diags.push(PlanDiagnostic::SlotOutOfRange {
                    context: "output expression",
                    slot,
                    slots: bound.touched.len(),
                });
                continue;
            }
            let Some(def) = slot_column(schema, bound, slot) else {
                continue;
            };
            if def.ty.is_numeric() {
                continue;
            }
            // A non-numeric column may pass through bare (projection, or
            // MIN/MAX/COUNT which compare values); it may not feed
            // arithmetic or a summing aggregate.
            if expr.ops() > 0 {
                diags.push(PlanDiagnostic::NonNumericArithmetic {
                    column: def.name.clone(),
                    column_type: def.ty.name(),
                });
            } else if matches!(agg, Some(AggFunc::Sum) | Some(AggFunc::Avg)) {
                diags.push(PlanDiagnostic::AggregateTypeMismatch {
                    func: match agg {
                        Some(AggFunc::Sum) => "sum",
                        _ => "avg",
                    },
                    column: def.name.clone(),
                    column_type: def.ty.name(),
                });
            }
        }
    }
}

fn check_grouping_and_order(bound: &BoundQuery, diags: &mut Vec<PlanDiagnostic>) {
    for &slot in &bound.group_by {
        if slot >= bound.touched.len() {
            diags.push(PlanDiagnostic::SlotOutOfRange {
                context: "GROUP BY",
                slot,
                slots: bound.touched.len(),
            });
        }
    }
    for &(pos, _) in &bound.order_by {
        if pos >= bound.arity() {
            diags.push(PlanDiagnostic::OrderByOutOfRange {
                position: pos,
                arity: bound.arity(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use fabric_sim::{MemoryHierarchy, SimConfig};
    use fabric_types::{CmpOp, ColumnType, Schema};
    use rowstore::RowTable;

    /// Catalog with one table: id i64, flag char(1), qty f64, d date.
    fn catalog() -> Catalog {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let schema = Schema::from_pairs(&[
            ("id", ColumnType::I64),
            ("flag", ColumnType::FixedStr(1)),
            ("qty", ColumnType::F64),
            ("d", ColumnType::Date),
        ]);
        let t = RowTable::create(&mut mem, schema, 8).unwrap();
        let mut c = Catalog::new();
        c.register_rows("t", t);
        c
    }

    fn plain(touched: Vec<usize>) -> BoundQuery {
        BoundQuery {
            table: "t".into(),
            items: (0..touched.len())
                .map(|s| OutputItem::Expr(Expr::col(s)))
                .collect(),
            touched,
            preds: vec![],
            group_by: vec![],
            order_by: vec![],
            limit: None,
        }
    }

    fn diags(c: &Catalog, b: &BoundQuery) -> Vec<PlanDiagnostic> {
        match analyze(c.get("t").unwrap(), b, &RmConfig::prototype()) {
            Ok(_) => vec![],
            Err(e) => e.diagnostics,
        }
    }

    #[test]
    fn well_formed_plan_verifies() {
        let c = catalog();
        let mut b = plain(vec![0, 2]);
        b.preds = vec![(0, CmpOp::Gt, Value::I64(3))];
        let v = analyze(c.get("t").unwrap(), &b, &RmConfig::prototype()).unwrap();
        assert_eq!(v.bound().touched, vec![0, 2]);
        assert_eq!(v.geometry().geometry().fields.len(), 2);
    }

    #[test]
    fn rejects_out_of_range_projection() {
        let c = catalog();
        let d = diags(&c, &plain(vec![0, 9]));
        assert!(
            d.contains(&PlanDiagnostic::ProjectionColumnOutOfRange {
                column: 9,
                columns: 4
            }),
            "{d:?}"
        );
    }

    #[test]
    fn rejects_duplicate_projection() {
        let c = catalog();
        let d = diags(&c, &plain(vec![2, 0, 2]));
        assert!(
            d.contains(&PlanDiagnostic::DuplicateProjectionColumn { column: 2 }),
            "{d:?}"
        );
    }

    #[test]
    fn rejects_type_mismatched_predicate_both_directions() {
        let c = catalog();
        // String literal against a numeric column.
        let mut b = plain(vec![0]);
        b.preds = vec![(0, CmpOp::Eq, Value::Str("x".into()))];
        let d = diags(&c, &b);
        assert!(
            matches!(&d[..], [PlanDiagnostic::PredicateTypeMismatch { column, .. }] if column == "id"),
            "{d:?}"
        );
        // Numeric literal against a string column.
        let mut b = plain(vec![1]);
        b.preds = vec![(0, CmpOp::Eq, Value::I64(1))];
        let d = diags(&c, &b);
        assert!(
            matches!(&d[..], [PlanDiagnostic::PredicateTypeMismatch { column, .. }] if column == "flag"),
            "{d:?}"
        );
    }

    #[test]
    fn rejects_out_of_range_slots_everywhere() {
        let c = catalog();
        let mut b = plain(vec![0]);
        b.preds = vec![(3, CmpOp::Eq, Value::I64(1))];
        b.items.push(OutputItem::Expr(Expr::col(7)));
        b.group_by = vec![5];
        b.order_by = vec![(9, false)];
        let d = diags(&c, &b);
        assert!(d.contains(&PlanDiagnostic::SlotOutOfRange {
            context: "predicate",
            slot: 3,
            slots: 1
        }));
        assert!(d.contains(&PlanDiagnostic::SlotOutOfRange {
            context: "output expression",
            slot: 7,
            slots: 1
        }));
        assert!(d.contains(&PlanDiagnostic::SlotOutOfRange {
            context: "GROUP BY",
            slot: 5,
            slots: 1
        }));
        assert!(d.contains(&PlanDiagnostic::OrderByOutOfRange {
            position: 9,
            arity: 2
        }));
    }

    #[test]
    fn rejects_summing_and_arithmetic_over_strings() {
        let c = catalog();
        let mut b = plain(vec![1]);
        b.items = vec![OutputItem::Agg(AggFunc::Sum, Expr::col(0))];
        b.group_by = vec![];
        let d = diags(&c, &b);
        assert!(
            matches!(
                &d[..],
                [PlanDiagnostic::AggregateTypeMismatch { func: "sum", .. }]
            ),
            "{d:?}"
        );
        let mut b = plain(vec![1]);
        b.items = vec![OutputItem::Expr(Expr::mul(
            Expr::col(0),
            Expr::lit(Value::I64(2)),
        ))];
        let d = diags(&c, &b);
        assert!(
            matches!(&d[..], [PlanDiagnostic::NonNumericArithmetic { .. }]),
            "{d:?}"
        );
    }

    #[test]
    fn min_max_count_over_strings_are_fine() {
        let c = catalog();
        let mut b = plain(vec![1]);
        b.items = vec![
            OutputItem::Agg(AggFunc::Min, Expr::col(0)),
            OutputItem::Agg(AggFunc::Max, Expr::col(0)),
            OutputItem::Agg(AggFunc::Count, Expr::lit(Value::I64(1))),
        ];
        assert!(analyze(c.get("t").unwrap(), &b, &RmConfig::prototype()).is_ok());
    }

    #[test]
    fn diagnostics_render_for_humans() {
        let e = AnalysisError {
            diagnostics: vec![
                PlanDiagnostic::DuplicateProjectionColumn { column: 2 },
                PlanDiagnostic::OrderByOutOfRange {
                    position: 9,
                    arity: 2,
                },
            ],
        };
        let msg = e.to_string();
        assert!(msg.contains("plan rejected"), "{msg}");
        assert!(msg.contains("column id 2"), "{msg}");
        assert!(msg.contains("position 9"), "{msg}");
        let fe: FabricError = e.into();
        assert!(matches!(fe, FabricError::Sql(_)));
    }
}
