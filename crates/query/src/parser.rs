//! Recursive-descent parser for the supported SQL subset:
//!
//! ```sql
//! SELECT item [, item]*
//! FROM table
//! [WHERE col op literal [AND col op literal]*]
//! [GROUP BY col [, col]*]
//! [ORDER BY col-or-position [ASC|DESC] [, ...]]
//! [LIMIT n]
//! ```
//!
//! where `item` is an arithmetic expression over columns and literals, or
//! an aggregate `sum|avg|min|max|count(expr | *)`, and `literal` may be an
//! integer, float, string, or `DATE 'yyyy-mm-dd'`.

use crate::lexer::{lex, Token};
use fabric_types::value::days_from_civil;
use fabric_types::{AggFunc, CmpOp, FabricError, Result};

/// Expression AST over column *names*.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    Col(String),
    Int(i64),
    Float(f64),
    Str(String),
    Date(u32),
    Bin(Box<AstExpr>, char, Box<AstExpr>),
}

/// One SELECT-list item.
#[derive(Debug, Clone, PartialEq)]
pub enum AstItem {
    Expr(AstExpr),
    /// `count(*)` has no argument.
    Agg(AggFunc, Option<AstExpr>),
}

/// One WHERE conjunct: `column op literal`.
#[derive(Debug, Clone, PartialEq)]
pub struct AstPred {
    pub col: String,
    pub op: CmpOp,
    pub literal: AstExpr,
}

/// One ORDER BY key: an output position (1-based) or a column name, plus
/// direction.
#[derive(Debug, Clone, PartialEq)]
pub struct AstOrderKey {
    pub key: AstOrderTarget,
    pub desc: bool,
}

/// What an ORDER BY key refers to.
#[derive(Debug, Clone, PartialEq)]
pub enum AstOrderTarget {
    /// 1-based output column position (`ORDER BY 2`).
    Position(usize),
    /// A column name that must appear as a plain output item.
    Column(String),
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub items: Vec<AstItem>,
    pub table: String,
    pub preds: Vec<AstPred>,
    pub group_by: Vec<String>,
    pub order_by: Vec<AstOrderKey>,
    pub limit: Option<usize>,
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        match self.next() {
            Some(Token::Kw(k)) if k == kw => Ok(()),
            other => Err(FabricError::Sql(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if self.peek()
            == Some(&Token::Sym(match s {
                "(" => "(",
                ")" => ")",
                "," => ",",
                "*" => "*",
                "+" => "+",
                "-" => "-",
                "/" => "/",
                _ => return false,
            }))
        {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(FabricError::Sql(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn agg_kw(tok: &Token) -> Option<AggFunc> {
        match tok {
            Token::Kw("SUM") => Some(AggFunc::Sum),
            Token::Kw("AVG") => Some(AggFunc::Avg),
            Token::Kw("MIN") => Some(AggFunc::Min),
            Token::Kw("MAX") => Some(AggFunc::Max),
            Token::Kw("COUNT") => Some(AggFunc::Count),
            _ => None,
        }
    }

    fn parse_literal_or_primary(&mut self) -> Result<AstExpr> {
        match self.next() {
            Some(Token::Int(v)) => Ok(AstExpr::Int(v)),
            Some(Token::Float(v)) => Ok(AstExpr::Float(v)),
            Some(Token::Str(s)) => Ok(AstExpr::Str(s)),
            Some(Token::Kw("DATE")) => match self.next() {
                Some(Token::Str(s)) => parse_date(&s),
                other => Err(FabricError::Sql(format!(
                    "expected date string, found {other:?}"
                ))),
            },
            Some(Token::Ident(name)) => Ok(AstExpr::Col(name)),
            Some(Token::Sym("(")) => {
                let e = self.parse_expr()?;
                if !matches!(self.next(), Some(Token::Sym(")"))) {
                    return Err(FabricError::Sql("expected `)`".into()));
                }
                Ok(e)
            }
            Some(Token::Sym("-")) => {
                // Unary minus on a numeric literal.
                match self.next() {
                    Some(Token::Int(v)) => Ok(AstExpr::Int(-v)),
                    Some(Token::Float(v)) => Ok(AstExpr::Float(-v)),
                    other => Err(FabricError::Sql(format!(
                        "expected number, found {other:?}"
                    ))),
                }
            }
            other => Err(FabricError::Sql(format!(
                "expected expression, found {other:?}"
            ))),
        }
    }

    fn parse_term(&mut self) -> Result<AstExpr> {
        let mut lhs = self.parse_literal_or_primary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Sym("*")) => '*',
                Some(Token::Sym("/")) => '/',
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_literal_or_primary()?;
            lhs = AstExpr::Bin(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_expr(&mut self) -> Result<AstExpr> {
        let mut lhs = self.parse_term()?;
        loop {
            let op = match self.peek() {
                Some(Token::Sym("+")) => '+',
                Some(Token::Sym("-")) => '-',
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_term()?;
            lhs = AstExpr::Bin(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_item(&mut self) -> Result<AstItem> {
        if let Some(func) = self.peek().and_then(Self::agg_kw) {
            self.pos += 1;
            if !self.eat_sym("(") {
                return Err(FabricError::Sql("expected `(` after aggregate".into()));
            }
            if func == AggFunc::Count && self.eat_sym("*") {
                if !self.eat_sym(")") {
                    return Err(FabricError::Sql("expected `)` after count(*)".into()));
                }
                return Ok(AstItem::Agg(AggFunc::Count, None));
            }
            let e = self.parse_expr()?;
            if !self.eat_sym(")") {
                return Err(FabricError::Sql("expected `)` closing aggregate".into()));
            }
            return Ok(AstItem::Agg(func, Some(e)));
        }
        Ok(AstItem::Expr(self.parse_expr()?))
    }

    fn parse_pred(&mut self) -> Result<AstPred> {
        let col = self.ident()?;
        let op = match self.next() {
            Some(Token::Sym("=")) => CmpOp::Eq,
            Some(Token::Sym("<>")) => CmpOp::Ne,
            Some(Token::Sym("<")) => CmpOp::Lt,
            Some(Token::Sym("<=")) => CmpOp::Le,
            Some(Token::Sym(">")) => CmpOp::Gt,
            Some(Token::Sym(">=")) => CmpOp::Ge,
            other => {
                return Err(FabricError::Sql(format!(
                    "expected comparison, found {other:?}"
                )))
            }
        };
        let literal = self.parse_literal_or_primary()?;
        if matches!(literal, AstExpr::Col(_) | AstExpr::Bin(..)) {
            return Err(FabricError::Sql(
                "WHERE supports `column op literal` conjuncts only".into(),
            ));
        }
        Ok(AstPred { col, op, literal })
    }

    fn parse_select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("SELECT")?;
        let mut items = vec![self.parse_item()?];
        while self.eat_sym(",") {
            items.push(self.parse_item()?);
        }
        self.expect_kw("FROM")?;
        let table = self.ident()?;

        let mut preds = Vec::new();
        if self.peek() == Some(&Token::Kw("WHERE")) {
            self.pos += 1;
            preds.push(self.parse_pred()?);
            while self.peek() == Some(&Token::Kw("AND")) {
                self.pos += 1;
                preds.push(self.parse_pred()?);
            }
        }

        let mut group_by = Vec::new();
        if self.peek() == Some(&Token::Kw("GROUP")) {
            self.pos += 1;
            self.expect_kw("BY")?;
            group_by.push(self.ident()?);
            while self.eat_sym(",") {
                group_by.push(self.ident()?);
            }
        }

        let mut order_by = Vec::new();
        if self.peek() == Some(&Token::Kw("ORDER")) {
            self.pos += 1;
            self.expect_kw("BY")?;
            loop {
                let key = match self.next() {
                    Some(Token::Int(n)) if n >= 1 => AstOrderTarget::Position(n as usize),
                    Some(Token::Ident(name)) => AstOrderTarget::Column(name),
                    other => {
                        return Err(FabricError::Sql(format!(
                            "expected column or position in ORDER BY, found {other:?}"
                        )))
                    }
                };
                let desc = match self.peek() {
                    Some(Token::Kw("DESC")) => {
                        self.pos += 1;
                        true
                    }
                    Some(Token::Kw("ASC")) => {
                        self.pos += 1;
                        false
                    }
                    _ => false,
                };
                order_by.push(AstOrderKey { key, desc });
                if !self.eat_sym(",") {
                    break;
                }
            }
        }

        let mut limit = None;
        if let Some(Token::Ident(w)) = self.peek() {
            if w.eq_ignore_ascii_case("limit") {
                self.pos += 1;
                match self.next() {
                    Some(Token::Int(n)) if n >= 0 => limit = Some(n as usize),
                    other => {
                        return Err(FabricError::Sql(format!(
                            "expected row count after LIMIT, found {other:?}"
                        )))
                    }
                }
            }
        }

        if let Some(t) = self.peek() {
            return Err(FabricError::Sql(format!("unexpected trailing token {t:?}")));
        }
        Ok(SelectStmt {
            items,
            table,
            preds,
            group_by,
            order_by,
            limit,
        })
    }
}

fn parse_date(s: &str) -> Result<AstExpr> {
    let parts: Vec<&str> = s.split('-').collect();
    if parts.len() != 3 {
        return Err(FabricError::Sql(format!(
            "bad date `{s}` (want yyyy-mm-dd)"
        )));
    }
    let y: i64 = parts[0]
        .parse()
        .map_err(|_| FabricError::Sql(format!("bad year in `{s}`")))?;
    let m: u32 = parts[1]
        .parse()
        .map_err(|_| FabricError::Sql(format!("bad month in `{s}`")))?;
    let d: u32 = parts[2]
        .parse()
        .map_err(|_| FabricError::Sql(format!("bad day in `{s}`")))?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return Err(FabricError::Sql(format!("date `{s}` out of range")));
    }
    Ok(AstExpr::Date(days_from_civil(y, m, d)))
}

/// Parse one SELECT statement.
pub fn parse(sql: &str) -> Result<SelectStmt> {
    let toks = lex(sql)?;
    Parser { toks, pos: 0 }.parse_select()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_projection_with_where() {
        let s = parse("SELECT a, b FROM t WHERE a < 10 AND b >= 2.5").unwrap();
        assert_eq!(s.table, "t");
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.preds.len(), 2);
        assert_eq!(s.preds[0].col, "a");
        assert_eq!(s.preds[0].op, CmpOp::Lt);
        assert!(s.group_by.is_empty());
    }

    #[test]
    fn parses_aggregates_and_group_by() {
        let s = parse(
            "SELECT l_returnflag, count(*), sum(l_extendedprice * (1 - l_discount)) \
             FROM lineitem GROUP BY l_returnflag",
        )
        .unwrap();
        assert_eq!(s.group_by, vec!["l_returnflag"]);
        assert!(matches!(s.items[1], AstItem::Agg(AggFunc::Count, None)));
        match &s.items[2] {
            AstItem::Agg(AggFunc::Sum, Some(AstExpr::Bin(_, '*', _))) => {}
            other => panic!("bad item {other:?}"),
        }
    }

    #[test]
    fn parses_date_literals() {
        let s = parse("SELECT a FROM t WHERE d >= DATE '1994-01-01'").unwrap();
        assert_eq!(s.preds[0].literal, AstExpr::Date(8766));
        assert!(parse("SELECT a FROM t WHERE d >= DATE '1994-13-01'").is_err());
        assert!(parse("SELECT a FROM t WHERE d >= DATE 'nope'").is_err());
    }

    #[test]
    fn expression_precedence() {
        let s = parse("SELECT a + b * 2 FROM t").unwrap();
        match &s.items[0] {
            AstItem::Expr(AstExpr::Bin(lhs, '+', rhs)) => {
                assert_eq!(**lhs, AstExpr::Col("a".into()));
                assert!(matches!(**rhs, AstExpr::Bin(_, '*', _)));
            }
            other => panic!("bad {other:?}"),
        }
    }

    #[test]
    fn parenthesized_grouping() {
        let s = parse("SELECT (a + b) * 2 FROM t").unwrap();
        match &s.items[0] {
            AstItem::Expr(AstExpr::Bin(lhs, '*', _)) => {
                assert!(matches!(**lhs, AstExpr::Bin(_, '+', _)));
            }
            other => panic!("bad {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT a").is_err());
        assert!(parse("SELECT a FROM t WHERE a").is_err());
        assert!(parse("SELECT a FROM t WHERE a < b").is_err());
        assert!(parse("SELECT a FROM t GROUP a").is_err());
        assert!(parse("SELECT a FROM t extra").is_err());
        assert!(parse("SELECT sum(a FROM t").is_err());
    }

    #[test]
    fn order_by_and_limit() {
        let s = parse("SELECT a, b FROM t ORDER BY b DESC, 1 LIMIT 10").unwrap();
        assert_eq!(s.order_by.len(), 2);
        assert_eq!(s.order_by[0].key, AstOrderTarget::Column("b".into()));
        assert!(s.order_by[0].desc);
        assert_eq!(s.order_by[1].key, AstOrderTarget::Position(1));
        assert!(!s.order_by[1].desc);
        assert_eq!(s.limit, Some(10));
        assert!(parse("SELECT a FROM t ORDER BY").is_err());
        assert!(parse("SELECT a FROM t LIMIT x").is_err());
    }

    #[test]
    fn unary_minus_literals() {
        let s = parse("SELECT a FROM t WHERE a > -5").unwrap();
        assert_eq!(s.preds[0].literal, AstExpr::Int(-5));
    }
}
