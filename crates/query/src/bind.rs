//! Name resolution: AST → typed logical plan over column slots.

use crate::catalog::Catalog;
use crate::parser::{AstExpr, AstItem, AstOrderTarget, AstPred, SelectStmt};
use fabric_types::{AggFunc, CmpOp, ColumnId, Expr, FabricError, Result, Value};

/// One output column of the bound query.
#[derive(Debug, Clone, PartialEq)]
pub enum OutputItem {
    /// Plain expression over slots (must be a group-by column when the
    /// query aggregates).
    Expr(Expr),
    /// Aggregate over an expression (`count(*)` aggregates the constant 1).
    Agg(AggFunc, Expr),
}

/// A bound query: everything resolved to slot indices over `touched`.
#[derive(Debug, Clone)]
pub struct BoundQuery {
    pub table: String,
    /// Table columns the query touches, in slot order; every `Expr::Col`
    /// below indexes into this list.
    pub touched: Vec<ColumnId>,
    /// Conjunctive predicate over slots.
    pub preds: Vec<(usize, CmpOp, Value)>,
    pub items: Vec<OutputItem>,
    /// Slots of the GROUP BY columns.
    pub group_by: Vec<usize>,
    /// `(output position, descending)` sort keys.
    pub order_by: Vec<(usize, bool)>,
    /// Row-count cap applied after sorting.
    pub limit: Option<usize>,
}

impl BoundQuery {
    pub fn has_aggregates(&self) -> bool {
        self.items.iter().any(|i| matches!(i, OutputItem::Agg(..)))
    }

    /// Number of output columns.
    pub fn arity(&self) -> usize {
        self.items.len()
    }

    /// Latency-histogram class of this query, named after the TPC-H
    /// shapes the figure benchmarks reproduce: `"q1"` for grouped
    /// aggregation, `"q6"` for a global (ungrouped) aggregate, `"scan"`
    /// for everything else. Session metrics bucket per-query latencies
    /// under `session.<id>.latency.<class>` and the engine exports
    /// p50/p95/p99 gauges per class.
    pub fn class(&self) -> &'static str {
        if self.has_aggregates() {
            if self.group_by.is_empty() {
                "q6"
            } else {
                "q1"
            }
        } else {
            "scan"
        }
    }
}

struct Binder<'a> {
    catalog_schema: &'a fabric_types::Schema,
    touched: Vec<ColumnId>,
}

impl Binder<'_> {
    fn slot(&mut self, name: &str) -> Result<usize> {
        let id = self.catalog_schema.column_id(name)?;
        if let Some(pos) = self.touched.iter().position(|&c| c == id) {
            return Ok(pos);
        }
        self.touched.push(id);
        Ok(self.touched.len() - 1)
    }

    fn literal(e: &AstExpr) -> Result<Value> {
        Ok(match e {
            AstExpr::Int(v) => Value::I64(*v),
            AstExpr::Float(v) => Value::F64(*v),
            AstExpr::Str(s) => Value::Str(s.clone()),
            AstExpr::Date(d) => Value::Date(*d),
            other => {
                return Err(FabricError::Sql(format!(
                    "expected a literal, found {other:?}"
                )))
            }
        })
    }

    fn expr(&mut self, e: &AstExpr) -> Result<Expr> {
        Ok(match e {
            AstExpr::Col(name) => Expr::Col(self.slot(name)?),
            AstExpr::Int(v) => Expr::lit(Value::I64(*v)),
            AstExpr::Float(v) => Expr::lit(Value::F64(*v)),
            AstExpr::Str(s) => Expr::lit(Value::Str(s.clone())),
            AstExpr::Date(d) => Expr::lit(Value::Date(*d)),
            AstExpr::Bin(a, op, b) => {
                let (a, b) = (self.expr(a)?, self.expr(b)?);
                match op {
                    '+' => Expr::add(a, b),
                    '-' => Expr::sub(a, b),
                    '*' => Expr::mul(a, b),
                    '/' => Expr::div(a, b),
                    other => return Err(FabricError::Sql(format!("bad operator `{other}`"))),
                }
            }
        })
    }
}

/// Bind `stmt` against `catalog`.
pub fn bind(catalog: &Catalog, stmt: &SelectStmt) -> Result<BoundQuery> {
    let entry = catalog.get(&stmt.table)?;
    let schema = entry.schema();
    let mut binder = Binder {
        catalog_schema: schema,
        touched: Vec::new(),
    };

    // Predicates first or later — slot order just follows first use.
    let mut items = Vec::with_capacity(stmt.items.len());
    for item in &stmt.items {
        items.push(match item {
            AstItem::Expr(e) => OutputItem::Expr(binder.expr(e)?),
            AstItem::Agg(f, Some(e)) => OutputItem::Agg(*f, binder.expr(e)?),
            AstItem::Agg(f, None) => OutputItem::Agg(*f, Expr::lit(Value::I64(1))),
        });
    }

    let mut preds = Vec::with_capacity(stmt.preds.len());
    for AstPred { col, op, literal } in &stmt.preds {
        let slot = binder.slot(col)?;
        let lit = Binder::literal(literal)?;
        // Cheap type sanity: strings only compare with strings.
        let col_ty = schema.column(binder.touched[slot])?.ty;
        let lit_is_str = matches!(lit, Value::Str(_));
        if lit_is_str != matches!(col_ty, fabric_types::ColumnType::FixedStr(_)) {
            return Err(FabricError::Sql(format!(
                "predicate on `{col}` compares {} with {}",
                col_ty.name(),
                lit.column_type().name()
            )));
        }
        preds.push((slot, *op, lit));
    }

    let mut group_by = Vec::with_capacity(stmt.group_by.len());
    for name in &stmt.group_by {
        group_by.push(binder.slot(name)?);
    }

    // Resolve ORDER BY keys to output positions.
    let mut order_by = Vec::with_capacity(stmt.order_by.len());
    for key in &stmt.order_by {
        let pos = match &key.key {
            AstOrderTarget::Position(p) => {
                if *p == 0 || *p > items.len() {
                    return Err(FabricError::Sql(format!(
                        "ORDER BY position {p} out of range (1..={})",
                        items.len()
                    )));
                }
                p - 1
            }
            AstOrderTarget::Column(name) => {
                let id = schema.column_id(name)?;
                items
                    .iter()
                    .position(|item| {
                        matches!(item, OutputItem::Expr(Expr::Col(s))
                            if binder.touched.get(*s) == Some(&id))
                    })
                    .ok_or_else(|| {
                        FabricError::Sql(format!(
                            "ORDER BY column `{name}` must appear as a plain output item"
                        ))
                    })?
            }
        };
        order_by.push((pos, key.desc));
    }

    let bound = BoundQuery {
        table: stmt.table.clone(),
        touched: binder.touched,
        preds,
        items,
        group_by,
        order_by,
        limit: stmt.limit,
    };

    // SQL rule: with aggregates, every plain item must be a grouping column.
    if bound.has_aggregates() {
        for item in &bound.items {
            if let OutputItem::Expr(e) = item {
                match e {
                    Expr::Col(s) if bound.group_by.contains(s) => {}
                    _ => {
                        return Err(FabricError::Sql(
                            "non-aggregate output must be a GROUP BY column".into(),
                        ))
                    }
                }
            }
        }
    } else if !bound.group_by.is_empty() {
        return Err(FabricError::Sql("GROUP BY without aggregates".into()));
    }

    Ok(bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use fabric_sim::{MemoryHierarchy, SimConfig};
    use fabric_types::{ColumnType, Schema};
    use rowstore::RowTable;

    fn catalog() -> Catalog {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let schema = Schema::from_pairs(&[
            ("id", ColumnType::I64),
            ("flag", ColumnType::FixedStr(1)),
            ("qty", ColumnType::F64),
            ("d", ColumnType::Date),
        ]);
        let t = RowTable::create(&mut mem, schema, 4).unwrap();
        let mut c = Catalog::new();
        c.register_rows("t", t);
        c
    }

    #[test]
    fn binds_slots_in_first_use_order() {
        let c = catalog();
        let b = bind(&c, &parse("SELECT qty, id FROM t WHERE d > 5").unwrap()).unwrap();
        assert_eq!(b.touched, vec![2, 0, 3]); // qty, id, d
        assert_eq!(b.preds, vec![(2, CmpOp::Gt, Value::I64(5))]);
        assert_eq!(b.items.len(), 2);
        assert!(!b.has_aggregates());
    }

    #[test]
    fn binds_aggregates_with_group_by() {
        let c = catalog();
        let b = bind(
            &c,
            &parse("SELECT flag, sum(qty * 2), count(*) FROM t GROUP BY flag").unwrap(),
        )
        .unwrap();
        assert!(b.has_aggregates());
        assert_eq!(b.group_by, vec![0]); // flag is slot 0
        match &b.items[1] {
            OutputItem::Agg(AggFunc::Sum, e) => assert_eq!(e.ops(), 1),
            other => panic!("bad {other:?}"),
        }
    }

    #[test]
    fn rejects_ungrouped_plain_columns() {
        let c = catalog();
        assert!(bind(&c, &parse("SELECT id, sum(qty) FROM t").unwrap()).is_err());
        assert!(bind(&c, &parse("SELECT id FROM t GROUP BY id").unwrap()).is_err());
    }

    #[test]
    fn rejects_unknown_names_and_type_mismatches() {
        let c = catalog();
        assert!(bind(&c, &parse("SELECT nope FROM t").unwrap()).is_err());
        assert!(bind(&c, &parse("SELECT id FROM missing").unwrap()).is_err());
        assert!(bind(&c, &parse("SELECT id FROM t WHERE flag > 3").unwrap()).is_err());
        assert!(bind(&c, &parse("SELECT id FROM t WHERE id = 'x'").unwrap()).is_err());
    }
}
