//! Crash-consistent durable media for the write path (DESIGN.md §14).
//!
//! The read path (PR 2) taught the fabric to *detect* corrupted deliveries
//! and degrade; this crate teaches the write path to *survive power loss*.
//! It models one durable device — think the flash behind `relstore`'s SSD —
//! holding two kinds of state:
//!
//! * an append-only **write-ahead log** of CRC-framed records
//!   ([`wal::frame_record`] / [`wal::scan`]), appended *before* any
//!   volatile table mutation, and
//! * page-granular **checkpoint blobs**, periodic snapshots that bound
//!   replay work.
//!
//! The device is deliberately generic: payloads are opaque bytes, so the
//! crate sits at layer 3 with no knowledge of `mvcc` row formats (the
//! commit/checkpoint codecs live in `mvcc::wal`, the sanctioned
//! `mvcc → durability` edge).
//!
//! Failure semantics, all drawn deterministically from the shared
//! [`fabric_sim::FaultPlan`] seed:
//!
//! * a **power cut** ([`fabric_sim::FaultPlan::write_crash`]) can strike
//!   any durable write — WAL append or checkpoint page alike, one global
//!   counter — leaving an arbitrary *prefix* of the in-flight bytes on the
//!   medium (possibly all of them: the write was durable but the caller
//!   saw [`fabric_types::FabricError::PowerLoss`] — commit ambiguity);
//! * a **torn page write** silently persists a strict prefix of a
//!   checkpoint page; the device reports success and only the per-page
//!   CRC at read time exposes the lie;
//! * **flash program failures** are transient and retried with backoff,
//!   surfacing [`fabric_types::FabricError::FlashWriteError`] past the
//!   retry budget.
//!
//! What survives a crash is exactly [`DurableMedia::into_survivor`]'s
//! [`DurableImage`] — the recovery path rebuilds state from nothing else.

pub mod config;
pub mod media;
pub mod wal;

pub use config::DurabilityConfig;
pub use media::{DurableImage, DurableMedia, MediaStats};
pub use wal::{frame_record, scan, Lsn, RecordKind, WalRecord};
