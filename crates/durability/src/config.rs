//! Timing, layout, and fault posture of the durable device.

use fabric_sim::{FaultConfig, RecoveryPolicy};

/// Configuration of one [`DurableMedia`](crate::DurableMedia).
///
/// Write timings follow the flash-program numbers of `relstore`'s
/// SmartSSD model: a program operation is an order of magnitude slower
/// than a read, and the byte-proportional term models the channel
/// transfer into the plane register.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurabilityConfig {
    /// Fault posture of the device (seed, crash/tear/program-error rates).
    pub faults: FaultConfig,
    /// Retry and backoff budgets for transient program failures.
    pub policy: RecoveryPolicy,
    /// Checkpoint page granularity in bytes; the torn-write and CRC unit.
    pub page_bytes: usize,
    /// Fixed cost of one durable write (flash program latency), ns.
    pub write_base_ns: f64,
    /// Per-byte transfer cost of a durable write, ns.
    pub write_ns_per_byte: f64,
}

impl DurabilityConfig {
    /// A fault-free device with SmartSSD-flavoured write timings.
    pub fn quiet(seed: u64) -> Self {
        DurabilityConfig {
            faults: FaultConfig::quiet(seed),
            policy: RecoveryPolicy::default(),
            page_bytes: 4096,
            write_base_ns: 200_000.0,
            write_ns_per_byte: 0.5,
        }
    }

    /// This configuration with the given fault posture.
    pub fn with_faults(self, faults: FaultConfig) -> Self {
        DurabilityConfig { faults, ..self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_config_is_fault_free() {
        let c = DurabilityConfig::quiet(7);
        assert_eq!(c.faults.wal_crash_prob, 0.0);
        assert_eq!(c.faults.crash_at_write, 0);
        assert!(c.page_bytes > 0);
        let f = FaultConfig::quiet(7).with_crash_at(3);
        assert_eq!(c.with_faults(f).faults.crash_at_write, 3);
    }
}
