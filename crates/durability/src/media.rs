//! The durable device: one power domain for log and checkpoint writes.
//!
//! A [`DurableMedia`] owns a single [`FaultPlan`], so the power-cut
//! counter ([`FaultPlan::write_crash`]) advances once per durable write
//! *across both kinds* — WAL appends and checkpoint pages share the same
//! crash schedule, which is what lets a crash matrix step a workload
//! through every write it performs with `crash_at_write = 1..=N`.
//!
//! After a cut the device object refuses further writes; the caller
//! tears everything volatile down and rebuilds from
//! [`DurableMedia::into_survivor`], exactly like a process restart.

use crate::config::DurabilityConfig;
use crate::wal::{frame_record, Lsn, RecordKind};
use fabric_sim::{Category, Cycles, FaultPlan, MemoryHierarchy};
use fabric_types::{crc32, FabricError, Result};

/// A checkpoint blob as it sits on the medium: page-granular, with the
/// *intended* CRC of every page recorded beside the (possibly torn)
/// stored bytes.
#[derive(Debug, Clone)]
struct CheckpointBlob {
    id: u64,
    /// Stored page images; a torn page holds only a prefix.
    pages: Vec<Vec<u8>>,
    /// CRC of what the writer meant each page to hold.
    intended_crcs: Vec<u32>,
    /// Did every page write complete before a cut?
    complete: bool,
}

/// Counters of device activity (injected faults live in
/// [`FaultPlan::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MediaStats {
    /// WAL records fully appended.
    pub appends: u64,
    /// Bytes fully appended to the log.
    pub append_bytes: u64,
    /// Checkpoint pages fully written.
    pub checkpoint_pages: u64,
    /// Durable writes completed (appends + pages), the crash-site count.
    pub durable_writes: u64,
    /// Program retries taken after transient flash write failures.
    pub write_retries: u64,
}

/// What physically survives a power cut: the log image and every
/// checkpoint blob, torn bytes included. `Clone` so tests can replay the
/// same post-crash state twice (idempotence checks).
#[derive(Debug, Clone)]
pub struct DurableImage {
    log: Vec<u8>,
    checkpoints: Vec<CheckpointBlob>,
}

impl DurableImage {
    /// An empty medium (first boot: no log, no checkpoints).
    pub fn empty() -> Self {
        DurableImage {
            log: Vec::new(),
            checkpoints: Vec::new(),
        }
    }

    /// The raw log image, torn tail and all ([`crate::wal::scan`] it).
    pub fn log_bytes(&self) -> &[u8] {
        &self.log
    }

    /// Drop `bytes` trailing bytes from the log image. Recovery calls
    /// this with the torn-tail length [`crate::wal::scan`] reported, so
    /// a device reopened from the image appends immediately after the
    /// last valid record — never after unscannable garbage, which a
    /// later scan would treat as the end of the log and thereby lose
    /// every record appended beyond it.
    pub fn truncate_log_tail(&mut self, bytes: usize) {
        let keep = self.log.len().saturating_sub(bytes);
        self.log.truncate(keep);
    }
}

/// The simulated durable device.
#[derive(Debug)]
pub struct DurableMedia {
    cfg: DurabilityConfig,
    plan: FaultPlan,
    log: Vec<u8>,
    checkpoints: Vec<CheckpointBlob>,
    crashed: bool,
    stats: MediaStats,
}

impl DurableMedia {
    /// A fresh, empty device.
    pub fn new(cfg: DurabilityConfig) -> Self {
        DurableMedia::from_image(cfg, DurableImage::empty())
    }

    /// Re-open a device around what survived a crash. The fault plan
    /// restarts from the (possibly new) seed in `cfg`, so a recovered
    /// run can schedule its *own* crash points (double-crash tests).
    pub fn from_image(cfg: DurabilityConfig, image: DurableImage) -> Self {
        DurableMedia {
            plan: FaultPlan::new(cfg.faults),
            cfg,
            log: image.log,
            checkpoints: image.checkpoints,
            crashed: false,
            stats: MediaStats::default(),
        }
    }

    pub fn config(&self) -> &DurabilityConfig {
        &self.cfg
    }

    pub fn stats(&self) -> MediaStats {
        self.stats
    }

    /// Injected-fault counters of the device's plan.
    pub fn fault_stats(&self) -> fabric_sim::FaultStats {
        self.plan.stats()
    }

    /// Has a power cut already struck this device object?
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Next append position (current log length).
    pub fn log_end(&self) -> Lsn {
        self.log.len() as Lsn
    }

    /// The bytes on the medium right now, as a crash survivor image.
    pub fn into_survivor(self) -> DurableImage {
        DurableImage {
            log: self.log,
            checkpoints: self.checkpoints,
        }
    }

    /// Charge the cycle cost of one durable write of `len` bytes.
    fn charge_write(&self, mem: &mut MemoryHierarchy, len: usize) {
        let ns = self.cfg.write_base_ns + self.cfg.write_ns_per_byte * len as f64;
        let done = mem.now() + mem.config().ns_to_cycles(ns);
        mem.stall_until(done);
    }

    /// The shared preamble of every durable write: refuse a crashed
    /// device, draw the crash site, and run the flash-program retry
    /// loop. `Ok(())` means the write may proceed in full; a crash
    /// returns how many of `len` bytes survive via the error path.
    fn admit_write(
        &mut self,
        mem: &mut MemoryHierarchy,
        device: &str,
        len: usize,
        page: u64,
    ) -> Result<()> {
        if self.crashed {
            return Err(FabricError::Storage(format!(
                "`{device}` lost power; reopen via replay"
            )));
        }
        if self.plan.write_crash() {
            self.crashed = true;
            mem.trace_instant("power-loss", Category::Fault, &[("write", page)]);
            mem.metrics_mut().counter_add("durability.power_losses", 1);
            mem.flight_dump("power-loss");
            return Err(FabricError::PowerLoss {
                device: device.to_string(),
                writes_done: self.stats.durable_writes,
            });
        }
        let mut attempt = 0u32;
        while self.plan.flash_write_failed() {
            attempt += 1;
            self.stats.write_retries += 1;
            let key = if device == "wal" {
                "durability.wal.retries"
            } else {
                "durability.ckpt.retries"
            };
            mem.metrics_mut().counter_add(key, 1);
            if attempt > self.cfg.policy.max_retries {
                mem.trace_instant("flash-write-error", Category::Fault, &[("page", page)]);
                return Err(FabricError::FlashWriteError {
                    page,
                    attempts: attempt,
                });
            }
            let ghz = mem.config().cpu_ghz;
            let backoff = self.cfg.policy.backoff_cycles(attempt, ghz);
            let t = mem.now() + backoff;
            mem.stall_retry_until(t);
            self.charge_write(mem, len);
        }
        Ok(())
    }

    /// Append one framed WAL record; returns its LSN. Log-before-apply:
    /// callers mutate volatile state only after this returns `Ok`. On
    /// [`FabricError::PowerLoss`] an arbitrary prefix of the frame —
    /// possibly all of it — is on the medium; [`crate::wal::scan`]
    /// sorts that out at recovery.
    pub fn append_record(
        &mut self,
        mem: &mut MemoryHierarchy,
        kind: RecordKind,
        payload: &[u8],
    ) -> Result<Lsn> {
        let frame = frame_record(kind, payload)?;
        let lsn = self.log_end();
        mem.trace_begin("wal-append", Category::Store);
        let t0 = mem.now();
        self.charge_write(mem, frame.len());
        let admitted = self.admit_write(mem, "wal", frame.len(), lsn);
        let outcome = match admitted {
            Ok(()) => {
                self.log.extend_from_slice(&frame);
                self.stats.appends += 1;
                self.stats.append_bytes += frame.len() as u64;
                self.stats.durable_writes += 1;
                let elapsed = mem.now().saturating_sub(t0);
                let mut wal = mem.metrics_mut().scoped("durability.wal");
                wal.counter_add("appends", 1);
                wal.counter_add("bytes", frame.len() as u64);
                wal.counter_add("commit_cycles", elapsed);
                wal.observe("append_cycles", elapsed);
                Ok(lsn)
            }
            Err(FabricError::PowerLoss {
                device,
                writes_done,
            }) => {
                let keep = self.plan.crash_keep(frame.len());
                self.log.extend_from_slice(&frame[..keep]);
                Err(FabricError::PowerLoss {
                    device,
                    writes_done,
                })
            }
            Err(e) => Err(e),
        };
        mem.trace_end(
            "wal-append",
            Category::Store,
            &[("bytes", frame.len() as u64)],
        );
        outcome
    }

    /// Write `payload` as checkpoint blob `id`, page by page. Pages may
    /// silently tear (caught by [`Self::read_checkpoint`]'s CRC check);
    /// a power cut mid-blob leaves it incomplete and unreadable.
    pub fn write_checkpoint(
        &mut self,
        mem: &mut MemoryHierarchy,
        id: u64,
        payload: &[u8],
    ) -> Result<()> {
        let page_bytes = self.cfg.page_bytes.max(1);
        let mut blob = CheckpointBlob {
            id,
            pages: Vec::new(),
            intended_crcs: Vec::new(),
            complete: false,
        };
        mem.trace_begin("ckpt-write", Category::Store);
        let mut failure = None;
        let chunks: Vec<&[u8]> = if payload.is_empty() {
            vec![&[][..]]
        } else {
            payload.chunks(page_bytes).collect()
        };
        for (i, chunk) in chunks.iter().enumerate() {
            self.charge_write(mem, chunk.len());
            match self.admit_write(mem, "checkpoint", chunk.len(), i as u64) {
                Ok(()) => {
                    blob.intended_crcs.push(crc32(chunk));
                    let stored = match self.plan.torn_write(chunk.len()) {
                        Some(keep) => chunk[..keep].to_vec(),
                        None => chunk.to_vec(),
                    };
                    blob.pages.push(stored);
                    self.stats.checkpoint_pages += 1;
                    self.stats.durable_writes += 1;
                }
                Err(FabricError::PowerLoss {
                    device,
                    writes_done,
                }) => {
                    let keep = self.plan.crash_keep(chunk.len());
                    blob.intended_crcs.push(crc32(chunk));
                    blob.pages.push(chunk[..keep].to_vec());
                    failure = Some(FabricError::PowerLoss {
                        device,
                        writes_done,
                    });
                    break;
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        blob.complete = failure.is_none();
        mem.trace_end(
            "ckpt-write",
            Category::Store,
            &[
                ("id", id),
                ("pages", blob.pages.len() as u64),
                ("complete", u64::from(blob.complete)),
            ],
        );
        // Even a torn or incomplete blob occupies the medium — recovery
        // must see it, fail its CRC check, and fall back.
        self.checkpoints.push(blob);
        let mut ckpt = mem.metrics_mut().scoped("durability.ckpt");
        if failure.is_none() {
            ckpt.counter_add("count", 1);
            ckpt.counter_add("bytes", payload.len() as u64);
        } else {
            ckpt.counter_add("failures", 1);
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Read checkpoint blob `id` back, verifying every page against its
    /// intended CRC. Incomplete or torn blobs fail with a typed error so
    /// recovery can fall back to an older checkpoint.
    pub fn read_checkpoint(&self, id: u64) -> Result<Vec<u8>> {
        let blob = self
            .checkpoints
            .iter()
            .rev()
            .find(|b| b.id == id)
            .ok_or_else(|| FabricError::Storage(format!("no checkpoint blob {id}")))?;
        if !blob.complete {
            return Err(FabricError::Storage(format!(
                "checkpoint blob {id} is incomplete (power cut mid-write)"
            )));
        }
        let mut out = Vec::new();
        for (i, (page, intended)) in blob.pages.iter().zip(&blob.intended_crcs).enumerate() {
            if crc32(page) != *intended {
                return Err(FabricError::CorruptBatch {
                    device: format!("checkpoint/{id}/page{i}"),
                    attempts: 1,
                });
            }
            out.extend_from_slice(page);
        }
        Ok(out)
    }

    /// Cycle cost estimate of appending `len` payload bytes (for cost
    /// models; charges nothing).
    pub fn append_cost(&self, mem: &MemoryHierarchy, len: usize) -> Cycles {
        let framed = crate::wal::HEADER_BYTES + len + crate::wal::TRAILER_BYTES;
        mem.config()
            .ns_to_cycles(self.cfg.write_base_ns + self.cfg.write_ns_per_byte * framed as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::scan;
    use fabric_sim::{FaultConfig, SimConfig};

    fn mem() -> MemoryHierarchy {
        MemoryHierarchy::new(SimConfig::default())
    }

    fn quiet_media(seed: u64) -> DurableMedia {
        DurableMedia::new(DurabilityConfig::quiet(seed))
    }

    #[test]
    fn appends_are_scannable_and_charged() {
        let mut m = mem();
        let mut d = quiet_media(1);
        let t0 = m.now();
        let l0 = d
            .append_record(&mut m, RecordKind::Commit, b"alpha")
            .expect("append");
        let l1 = d
            .append_record(&mut m, RecordKind::Commit, b"beta")
            .expect("append");
        assert_eq!(l0, 0);
        assert!(l1 > l0);
        assert!(m.now() > t0, "durable writes cost simulated time");
        let img = d.into_survivor();
        let (recs, trunc) = scan(img.log_bytes());
        assert_eq!(trunc, 0);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].payload, b"alpha");
        assert_eq!(recs[1].lsn, l1);
    }

    #[test]
    fn checkpoint_roundtrip_spans_pages() {
        let mut m = mem();
        let mut d = quiet_media(2);
        let payload: Vec<u8> = (0..10_000u32).map(|i| i as u8).collect();
        d.write_checkpoint(&mut m, 7, &payload).expect("ckpt");
        assert_eq!(d.read_checkpoint(7).expect("read"), payload);
        assert!(d.read_checkpoint(8).is_err());
        assert!(d.stats().checkpoint_pages >= 3, "4 KiB pages over 10 KB");
        // Empty payloads still produce a readable (empty) blob.
        d.write_checkpoint(&mut m, 8, &[]).expect("ckpt");
        assert_eq!(d.read_checkpoint(8).expect("read"), Vec::<u8>::new());
    }

    #[test]
    fn scheduled_crash_tears_the_log_tail_only() {
        // Crash at the 3rd durable write: two records survive whole, the
        // third survives only as a torn tail that scan() truncates.
        let cfg = DurabilityConfig::quiet(3).with_faults(FaultConfig::quiet(3).with_crash_at(3));
        let mut m = mem();
        let mut d = DurableMedia::new(cfg);
        d.append_record(&mut m, RecordKind::Commit, b"one")
            .expect("append");
        d.append_record(&mut m, RecordKind::Commit, b"two")
            .expect("append");
        let err = d.append_record(&mut m, RecordKind::Commit, b"three");
        match err {
            Err(FabricError::PowerLoss {
                device,
                writes_done,
            }) => {
                assert_eq!(device, "wal");
                assert_eq!(writes_done, 2);
            }
            other => panic!("expected PowerLoss, got {other:?}"),
        }
        assert!(d.is_crashed());
        // A crashed device refuses everything until reopened.
        assert!(d.append_record(&mut m, RecordKind::Commit, b"x").is_err());
        let (recs, _trunc) = scan(d.into_survivor().log_bytes());
        assert!(recs.len() == 2 || recs.len() == 3, "tail is torn or whole");
        assert_eq!(recs[0].payload, b"one");
        assert_eq!(recs[1].payload, b"two");
    }

    #[test]
    fn crash_mid_checkpoint_leaves_blob_unreadable_but_log_intact() {
        let payload = vec![0xAB; 20_000];
        // Write 2 records, then a checkpoint; crash on the checkpoint's
        // 2nd page (durable write #4).
        let cfg = DurabilityConfig::quiet(4).with_faults(FaultConfig::quiet(4).with_crash_at(4));
        let mut m = mem();
        let mut d = DurableMedia::new(cfg);
        d.append_record(&mut m, RecordKind::Commit, b"a")
            .expect("append");
        d.append_record(&mut m, RecordKind::Commit, b"b")
            .expect("append");
        let err = d.write_checkpoint(&mut m, 1, &payload);
        assert!(matches!(err, Err(FabricError::PowerLoss { .. })));
        let survivor = DurableMedia::from_image(DurabilityConfig::quiet(4), d.into_survivor());
        assert!(survivor.read_checkpoint(1).is_err(), "incomplete blob");
        let (recs, trunc) = scan(survivor.log.as_slice());
        assert_eq!(recs.len(), 2, "log records predate the crash");
        assert_eq!(trunc, 0);
    }

    #[test]
    fn truncating_the_torn_tail_keeps_the_reopened_log_appendable() {
        let mut m = mem();
        let mut d = quiet_media(7);
        d.append_record(&mut m, RecordKind::Commit, b"keep")
            .expect("append");
        let mut img = d.into_survivor();
        // A crash left a strict prefix of an in-flight frame on the log.
        let torn = frame_record(RecordKind::Commit, b"in-flight").expect("frame");
        img.log.extend_from_slice(&torn[..torn.len() - 3]);
        let (recs, trunc) = scan(img.log_bytes());
        assert_eq!(recs.len(), 1);
        assert!(trunc > 0);
        // Without truncation the next append would land after the garbage
        // and be invisible to every future scan; with it the log stays
        // fully scannable.
        img.truncate_log_tail(trunc);
        let mut d = DurableMedia::from_image(DurabilityConfig::quiet(7), img);
        d.append_record(&mut m, RecordKind::Commit, b"after")
            .expect("append");
        let (recs, trunc) = scan(d.into_survivor().log_bytes());
        assert_eq!(trunc, 0);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].payload, b"after");
    }

    #[test]
    fn torn_checkpoint_pages_fail_their_crc() {
        let cfg = DurabilityConfig::quiet(5).with_faults(FaultConfig {
            torn_write_prob: 1.0,
            ..FaultConfig::quiet(5)
        });
        let mut m = mem();
        let mut d = DurableMedia::new(cfg);
        let payload = vec![7u8; 9000];
        d.write_checkpoint(&mut m, 1, &payload)
            .expect("write reports success");
        match d.read_checkpoint(1) {
            Err(FabricError::CorruptBatch { device, .. }) => {
                assert!(device.starts_with("checkpoint/1/page"));
            }
            other => panic!("expected CorruptBatch, got {other:?}"),
        }
        assert!(d.fault_stats().torn_writes > 0);
    }

    #[test]
    fn flash_write_errors_exhaust_the_retry_budget() {
        let cfg = DurabilityConfig::quiet(6).with_faults(FaultConfig {
            flash_write_prob: 1.0,
            ..FaultConfig::quiet(6)
        });
        let mut m = mem();
        let mut d = DurableMedia::new(cfg);
        let t0 = m.now();
        match d.append_record(&mut m, RecordKind::Commit, b"doomed") {
            Err(FabricError::FlashWriteError { attempts, .. }) => {
                assert_eq!(attempts, cfg.policy.max_retries + 1);
            }
            other => panic!("expected FlashWriteError, got {other:?}"),
        }
        assert!(m.now() > t0, "retries charge backoff");
        assert!(!d.is_crashed(), "program failure is not a power cut");
        assert_eq!(d.stats().appends, 0);
        assert_eq!(scan(&d.log).0.len(), 0, "nothing half-appended");
    }

    #[test]
    fn identical_seeds_replay_identical_device_histories() {
        let cfg = DurabilityConfig::quiet(9).with_faults(FaultConfig {
            wal_crash_prob: 0.08,
            flash_write_prob: 0.05,
            torn_write_prob: 0.1,
            ..FaultConfig::quiet(9)
        });
        let run = || {
            let mut m = mem();
            let mut d = DurableMedia::new(cfg);
            let mut outcomes = Vec::new();
            for i in 0..60u64 {
                if i % 10 == 9 {
                    outcomes.push(format!(
                        "{:?}",
                        d.write_checkpoint(&mut m, i, &vec![i as u8; 5000])
                    ));
                } else {
                    let r = d.append_record(&mut m, RecordKind::Commit, &i.to_le_bytes());
                    outcomes.push(format!("{r:?}"));
                }
                if d.is_crashed() {
                    break;
                }
            }
            (outcomes, d.into_survivor().log, m.now())
        };
        let (oa, la, ta) = run();
        let (ob, lb, tb) = run();
        assert_eq!(oa, ob);
        assert_eq!(la, lb, "surviving log images are bit-identical");
        assert_eq!(ta, tb, "cycle clocks agree");
    }
}
