//! CRC-framed write-ahead-log records (DESIGN.md §14).
//!
//! Record frame, little-endian throughout:
//!
//! ```text
//! [magic u16][kind u8][reserved u8][payload_len u32][payload…][crc u32]
//! ```
//!
//! The CRC-32 covers everything from `magic` through the last payload
//! byte, computed with the streaming [`fabric_types::Crc32`] hasher so a
//! writer can frame header and payload fragments without a contiguous
//! buffer. [`scan`] walks a log image and returns every record of the
//! *valid prefix*: the first frame that is short, mis-magicked, or fails
//! its CRC ends the scan, and everything from it onward counts as the
//! torn tail a crash left behind. Log-before-apply means that tail can
//! only ever be the single in-flight write, so truncating it is safe.

use fabric_types::{Crc32, FabricError, Result};

/// Byte offset of a record in the log: its log sequence number.
pub type Lsn = u64;

/// Magic prefix of every frame.
pub const WAL_MAGIC: u16 = 0xFAB7;

/// Fixed bytes before the payload: magic + kind + reserved + len.
pub const HEADER_BYTES: usize = 8;

/// Trailing CRC bytes.
pub const TRAILER_BYTES: usize = 4;

/// What a log record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A committed transaction's write set (payload: `mvcc::wal` codec).
    Commit,
    /// A checkpoint took: payload names the blob and its watermark.
    Checkpoint,
}

impl RecordKind {
    fn to_byte(self) -> u8 {
        match self {
            RecordKind::Commit => 1,
            RecordKind::Checkpoint => 2,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(RecordKind::Commit),
            2 => Some(RecordKind::Checkpoint),
            _ => None,
        }
    }
}

/// One record recovered from a log image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Byte offset where the record's frame starts.
    pub lsn: Lsn,
    pub kind: RecordKind,
    pub payload: Vec<u8>,
}

/// Frame `payload` as one durable record.
pub fn frame_record(kind: RecordKind, payload: &[u8]) -> Result<Vec<u8>> {
    let len = u32::try_from(payload.len())
        .map_err(|_| FabricError::Codec("WAL payload exceeds u32 length".to_string()))?;
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len() + TRAILER_BYTES);
    out.extend_from_slice(&WAL_MAGIC.to_le_bytes());
    out.push(kind.to_byte());
    out.push(0);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
    let mut h = Crc32::new();
    h.update(&out);
    out.extend_from_slice(&h.finalize().to_le_bytes());
    Ok(out)
}

/// Walk a log image and return `(records, truncated_tail_bytes)`: every
/// record of the valid prefix, plus how many trailing bytes were
/// abandoned as a torn tail. Never fails — a corrupt frame just ends the
/// valid prefix.
pub fn scan(log: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut off = 0usize;
    while log.len() - off >= HEADER_BYTES + TRAILER_BYTES {
        let frame = &log[off..];
        let magic = u16::from_le_bytes([frame[0], frame[1]]);
        if magic != WAL_MAGIC {
            break;
        }
        let Some(kind) = RecordKind::from_byte(frame[2]) else {
            break;
        };
        let len = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]) as usize;
        let total = HEADER_BYTES + len + TRAILER_BYTES;
        if frame.len() < total {
            break;
        }
        let mut h = Crc32::new();
        h.update(&frame[..HEADER_BYTES + len]);
        let stored = u32::from_le_bytes([
            frame[HEADER_BYTES + len],
            frame[HEADER_BYTES + len + 1],
            frame[HEADER_BYTES + len + 2],
            frame[HEADER_BYTES + len + 3],
        ]);
        if h.finalize() != stored {
            break;
        }
        records.push(WalRecord {
            lsn: off as Lsn,
            kind,
            payload: frame[HEADER_BYTES..HEADER_BYTES + len].to_vec(),
        });
        off += total;
    }
    (records, log.len() - off)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> Vec<u8> {
        let mut log = Vec::new();
        for i in 0..5u8 {
            let kind = if i % 2 == 0 {
                RecordKind::Commit
            } else {
                RecordKind::Checkpoint
            };
            log.extend(frame_record(kind, &vec![i; 10 + i as usize]).expect("frame"));
        }
        log
    }

    #[test]
    fn roundtrip_scan_recovers_every_record() {
        let log = sample_log();
        let (recs, trunc) = scan(&log);
        assert_eq!(recs.len(), 5);
        assert_eq!(trunc, 0);
        assert_eq!(recs[0].lsn, 0);
        assert_eq!(recs[0].kind, RecordKind::Commit);
        assert_eq!(recs[1].kind, RecordKind::Checkpoint);
        assert_eq!(recs[2].payload, vec![2u8; 12]);
        // LSNs are the byte offsets of the frames.
        for w in recs.windows(2) {
            assert!(w[1].lsn > w[0].lsn);
        }
    }

    #[test]
    fn torn_tail_is_detected_and_truncated() {
        let log = sample_log();
        let whole = scan(&log).0.len();
        // Cut at every possible prefix length: the scan must never panic,
        // never invent a record, and lose at most the in-flight frame.
        for cut in 0..log.len() {
            let (recs, trunc) = scan(&log[..cut]);
            assert!(recs.len() <= whole);
            assert_eq!(
                trunc,
                cut - recs
                    .iter()
                    .map(|r| HEADER_BYTES + r.payload.len() + TRAILER_BYTES)
                    .sum::<usize>()
            );
            for (a, b) in recs.iter().zip(scan(&log).0.iter()) {
                assert_eq!(a, b, "valid prefix must be stable under truncation");
            }
        }
    }

    #[test]
    fn corrupt_frames_end_the_valid_prefix() {
        let log = sample_log();
        let (clean, _) = scan(&log);
        // Flip one bit in the third record's payload: records 0-1 survive,
        // 2+ are abandoned.
        let mut bad = log.clone();
        let off = clean[2].lsn as usize + HEADER_BYTES + 3;
        bad[off] ^= 0x10;
        let (recs, trunc) = scan(&bad);
        assert_eq!(recs.len(), 2);
        assert!(trunc > 0);
        // Bad magic stops immediately.
        let mut bad = log.clone();
        bad[0] ^= 0xFF;
        assert_eq!(scan(&bad).0.len(), 0);
        // Unknown kind stops cleanly.
        let mut bad = log;
        bad[2] = 99;
        assert_eq!(scan(&bad).0.len(), 0);
    }

    #[test]
    fn empty_payloads_and_empty_logs_are_fine() {
        assert_eq!(scan(&[]), (Vec::new(), 0));
        let f = frame_record(RecordKind::Commit, &[]).expect("frame");
        let (recs, trunc) = scan(&f);
        assert_eq!(recs.len(), 1);
        assert_eq!(trunc, 0);
        assert!(recs[0].payload.is_empty());
    }
}
