//! HTAP workload mixes: the paper's §I trade-off, made measurable.
//!
//! Classic HTAP systems *"maintain multiple copies of data in different
//! formats or convert data between different layouts … compromising between
//! efficient analytics and data freshness."* The Relational Fabric keeps a
//! single row layout and carves fresh column groups on demand.
//!
//! Two system models run the identical interleaved workload (update batches
//! plus periodic analytical scans over a balance column):
//!
//! * [`run_fabric_htap`] — single layout: OLTP commits into a versioned row
//!   table; every scan reads the *current* snapshot through the RM device
//!   (visibility filtered in the fabric). Staleness is always zero.
//! * [`run_dual_layout_htap`] — the conventional design: the same OLTP
//!   stream, plus a materialized columnar copy refreshed by a (timed) full
//!   conversion every `convert_every` batches; scans run on the copy and
//!   see data as old as the last conversion.

use crate::RunResult;
use colstore::{exec as colx, ColTable};
use fabric_sim::MemoryHierarchy;
use fabric_types::rng::DetRng;
use fabric_types::{ColumnType, Expr, Result, Schema, Value};
use mvcc::scan::rm_visible_sum;
use mvcc::{TxnManager, VersionedTable};
use relmem::RmConfig;

/// Parameters of one HTAP mix run.
#[derive(Debug, Clone, Copy)]
pub struct MixParams {
    /// Logical rows (accounts).
    pub accounts: usize,
    /// Update batches (each is one transaction).
    pub batches: usize,
    /// Updates per batch.
    pub updates_per_batch: usize,
    /// Run an analytical scan after every batch.
    pub scans: bool,
    /// Dual-layout only: refresh the columnar copy every this many batches
    /// (`usize::MAX` = never after the initial load).
    pub convert_every: usize,
    pub seed: u64,
}

impl Default for MixParams {
    fn default() -> Self {
        MixParams {
            accounts: 20_000,
            batches: 20,
            updates_per_batch: 200,
            scans: true,
            convert_every: 4,
            seed: 0x41AB,
        }
    }
}

/// Outcome of one mix run.
#[derive(Debug, Clone, Copy)]
pub struct MixOutcome {
    /// Simulated time spent in OLTP commits.
    pub oltp_ns: f64,
    /// Simulated time spent in analytical scans.
    pub olap_ns: f64,
    /// Simulated time spent maintaining the analytical copy (dual-layout
    /// only; zero for the fabric).
    pub maintenance_ns: f64,
    /// Average staleness of scan results, in commits-behind.
    pub avg_staleness_commits: f64,
    /// Sum of all scan results (a checksum; fresh systems see newer data,
    /// so this differs between models unless `convert_every == 1`).
    pub scan_checksum: f64,
    pub scans: usize,
}

impl MixOutcome {
    pub fn total_ns(&self) -> f64 {
        self.oltp_ns + self.olap_ns + self.maintenance_ns
    }
}

struct Oltp {
    table: VersionedTable,
    tm: TxnManager,
    ids: Vec<mvcc::LogicalId>,
    rng: DetRng,
}

fn setup_oltp(mem: &mut MemoryHierarchy, p: &MixParams) -> Result<Oltp> {
    let schema = Schema::from_pairs(&[("acct", ColumnType::I64), ("balance", ColumnType::I64)]);
    let capacity = p.accounts + p.batches * p.updates_per_batch + 16;
    let mut table = VersionedTable::create(mem, schema, capacity)?;
    let tm = TxnManager::new();
    let mut txn = tm.begin();
    for a in 0..p.accounts as i64 {
        txn.insert(vec![Value::I64(a), Value::I64(1000)]);
    }
    let ids = tm.commit(mem, &mut table, txn)?.inserted;
    Ok(Oltp {
        table,
        tm,
        ids,
        rng: DetRng::seed_from_u64(p.seed),
    })
}

fn run_batch(mem: &mut MemoryHierarchy, o: &mut Oltp, n: usize) -> Result<()> {
    let mut txn = o.tm.begin();
    for _ in 0..n {
        let l = o.ids[o.rng.gen_range(0..o.ids.len())];
        let delta = o.rng.gen_range(-50..=50i64);
        let bal = o
            .table
            .read_at(mem, l, 1, txn.start_ts)?
            .expect("account visible")
            .as_i64()?;
        txn.update(l, vec![(1, Value::I64(bal + delta))]);
    }
    o.tm.commit(mem, &mut o.table, txn)?;
    Ok(())
}

/// The fabric-native model: one layout, always-fresh scans.
pub fn run_fabric_htap(mem: &mut MemoryHierarchy, p: &MixParams) -> Result<MixOutcome> {
    let mut o = setup_oltp(mem, p)?;
    let mut out = MixOutcome {
        oltp_ns: 0.0,
        olap_ns: 0.0,
        maintenance_ns: 0.0,
        avg_staleness_commits: 0.0,
        scan_checksum: 0.0,
        scans: 0,
    };
    for _ in 0..p.batches {
        let t0 = mem.now();
        run_batch(mem, &mut o, p.updates_per_batch)?;
        out.oltp_ns += mem.ns_since(t0);

        if p.scans {
            let t0 = mem.now();
            let ts = o.tm.snapshot_ts();
            let (sum, _) = rm_visible_sum(mem, &o.table, 1, ts, RmConfig::prototype())?;
            out.olap_ns += mem.ns_since(t0);
            out.scan_checksum += sum;
            out.scans += 1;
            // Fresh by construction: the snapshot is the latest commit.
        }
    }
    Ok(out)
}

/// The conventional dual-layout model: OLTP rows plus a periodically
/// reconverted columnar copy; scans read the copy.
pub fn run_dual_layout_htap(mem: &mut MemoryHierarchy, p: &MixParams) -> Result<MixOutcome> {
    let mut o = setup_oltp(mem, p)?;
    let schema = Schema::from_pairs(&[("balance", ColumnType::I64)]);
    let mut copy = ColTable::create(mem, schema, p.accounts)?;
    let mut out = MixOutcome {
        oltp_ns: 0.0,
        olap_ns: 0.0,
        maintenance_ns: 0.0,
        avg_staleness_commits: 0.0,
        scan_checksum: 0.0,
        scans: 0,
    };

    // Initial conversion (counted as maintenance).
    let t0 = mem.now();
    convert(mem, &o, &mut copy)?;
    out.maintenance_ns += mem.ns_since(t0);
    let mut commits_since_convert = 0usize;
    let mut staleness_acc = 0usize;

    for batch in 0..p.batches {
        let t0 = mem.now();
        run_batch(mem, &mut o, p.updates_per_batch)?;
        out.oltp_ns += mem.ns_since(t0);
        commits_since_convert += 1;

        if p.convert_every != usize::MAX && (batch + 1) % p.convert_every == 0 {
            let t0 = mem.now();
            convert(mem, &o, &mut copy)?;
            out.maintenance_ns += mem.ns_since(t0);
            commits_since_convert = 0;
        }

        if p.scans {
            let t0 = mem.now();
            let sum = colx::sum_expr(mem, &copy, &[0], &Expr::col(0), None)?;
            out.olap_ns += mem.ns_since(t0);
            out.scan_checksum += sum;
            out.scans += 1;
            staleness_acc += commits_since_convert;
        }
    }
    if out.scans > 0 {
        out.avg_staleness_commits = staleness_acc as f64 / out.scans as f64;
    }
    Ok(out)
}

/// Timed full conversion: read the visible snapshot out of the row store
/// and rewrite the columnar copy — the layout-conversion cost HTAP systems
/// pay (§I).
fn convert(mem: &mut MemoryHierarchy, o: &Oltp, copy: &mut ColTable) -> Result<()> {
    let ts = o.tm.snapshot_ts();
    let rows = mvcc::scan::collect_visible(mem, &o.table, ts)?;
    copy.clear();
    for row in rows {
        copy.append(mem, &[row[1].clone()])?;
    }
    Ok(())
}

/// Convenience: run both models and return `(fabric, dual)`.
pub fn compare_htap(p: &MixParams) -> Result<(MixOutcome, MixOutcome)> {
    use fabric_sim::SimConfig;
    let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
    let fabric = run_fabric_htap(&mut mem, p)?;
    let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
    let dual = run_dual_layout_htap(&mut mem, p)?;
    Ok((fabric, dual))
}

/// A `RunResult`-shaped view for harness reuse.
pub fn as_run_result(o: &MixOutcome) -> RunResult {
    RunResult {
        ns: o.total_ns(),
        checksum: o.scan_checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MixParams {
        MixParams {
            accounts: 2_000,
            batches: 6,
            updates_per_batch: 50,
            scans: true,
            convert_every: 1,
            seed: 9,
        }
    }

    #[test]
    fn convert_every_batch_matches_fabric_freshness() {
        // With conversion after every batch, the dual-layout scans see the
        // same data the fabric sees: identical checksums.
        let (fabric, dual) = compare_htap(&small()).unwrap();
        assert_eq!(fabric.scans, dual.scans);
        assert_eq!(fabric.scan_checksum, dual.scan_checksum);
        assert_eq!(fabric.avg_staleness_commits, 0.0);
        assert_eq!(dual.avg_staleness_commits, 0.0);
        // But it pays for it in maintenance.
        assert_eq!(fabric.maintenance_ns, 0.0);
        assert!(dual.maintenance_ns > 0.0);
    }

    #[test]
    fn infrequent_conversion_trades_freshness() {
        let p = MixParams {
            convert_every: 3,
            ..small()
        };
        let (fabric, dual) = compare_htap(&p).unwrap();
        assert!(
            dual.avg_staleness_commits > 0.5,
            "{}",
            dual.avg_staleness_commits
        );
        // Stale scans generally see different balances.
        assert_ne!(fabric.scan_checksum, dual.scan_checksum);
        assert_eq!(fabric.avg_staleness_commits, 0.0);
    }

    #[test]
    fn never_converting_is_maximally_stale() {
        let p = MixParams {
            convert_every: usize::MAX,
            ..small()
        };
        let (_, dual) = compare_htap(&p).unwrap();
        // Staleness accumulates 1, 2, ..., batches.
        assert!(dual.avg_staleness_commits >= (p.batches as f64) / 2.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let (a1, d1) = compare_htap(&small()).unwrap();
        let (a2, d2) = compare_htap(&small()).unwrap();
        assert_eq!(a1.scan_checksum, a2.scan_checksum);
        assert_eq!(d1.scan_checksum, d2.scan_checksum);
        assert_eq!(a1.total_ns(), a2.total_ns());
    }
}
