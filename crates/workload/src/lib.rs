//! Deterministic workload generators and the paper's evaluation queries,
//! implemented for all three engines (ROW / COL / RM).
//!
//! * [`synthetic`] — the §V microbenchmark table: 64-byte rows of 16
//!   four-byte integer columns;
//! * [`tpch`] — a TPC-H-style `lineitem` generator with the columns,
//!   value distributions, and ~152-byte rows that Q1/Q6 need;
//! * [`micro`] — the projection/selection microbenchmarks behind Figs. 5
//!   and 6, one implementation per engine, all returning identical
//!   checksums;
//! * [`queries`] — TPC-H Q1 and Q6 for each engine (Fig. 7), plus
//!   push-down variants used by the ablation benches;
//! * [`mix`] — interleaved HTAP mixes: the single-layout fabric model vs
//!   the conventional dual-layout (convert-and-copy) design.
//!
//! Everything is seeded and deterministic: the same seed produces the same
//! table bytes, the same query answers, and the same simulated timings.

pub mod micro;
pub mod mix;
pub mod queries;
pub mod synthetic;
pub mod tpch;

pub use synthetic::SyntheticData;
pub use tpch::Lineitem;

/// Result of one measured engine run: simulated time plus a checksum that
/// must agree across engines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunResult {
    /// Simulated wall time of the measured region, in nanoseconds.
    pub ns: f64,
    /// Engine-independent checksum of the query result.
    pub checksum: f64,
}
