//! The §V projection/selection microbenchmarks (Figs. 5 and 6), one
//! implementation per engine.
//!
//! The measured query is `SELECT c_{p1}, …, c_{pk} FROM t [WHERE c_s <
//! threshold AND …]`, with the result consumed by summing every projected
//! value — so all engines do the same logical work and must produce the
//! same checksum. Time is measured in simulated nanoseconds from cold
//! caches.

use crate::synthetic::SyntheticData;
use crate::RunResult;
use colstore::{exec as colx, ColTable};
use fabric_sim::MemoryHierarchy;
use fabric_types::{CmpOp, ColumnId, ColumnPredicate, Predicate, Result, Value};
use relmem::{EphemeralColumns, RmConfig};
use rowstore::{Filter, Operator, RowTable, SeqScan};

/// One microbenchmark query: projected columns plus `col < threshold`
/// selection conjuncts.
#[derive(Debug, Clone)]
pub struct MicroQuery {
    pub proj: Vec<ColumnId>,
    pub sel: Vec<(ColumnId, i32)>,
}

impl MicroQuery {
    /// Fig. 5 point: project the first `p` columns, no selection.
    pub fn projectivity(p: usize) -> Self {
        MicroQuery {
            proj: (0..p).collect(),
            sel: Vec::new(),
        }
    }

    /// Fig. 6 point: project the first `p` columns and filter on the *last*
    /// `s` columns of a `num_cols`-wide table, each conjunct with the given
    /// per-conjunct selectivity.
    pub fn proj_sel(p: usize, s: usize, num_cols: usize, selectivity: f64) -> Self {
        let thr = SyntheticData::threshold(selectivity);
        MicroQuery {
            proj: (0..p).collect(),
            sel: (num_cols - s..num_cols).map(|c| (c, thr)).collect(),
        }
    }

    /// All columns the query touches: projections first, then selection
    /// columns not already projected.
    pub fn touched_cols(&self) -> Vec<ColumnId> {
        let mut cols = self.proj.clone();
        for (c, _) in &self.sel {
            if !cols.contains(c) {
                cols.push(*c);
            }
        }
        cols
    }
}

/// ROW engine: Volcano scan → filter → tuple-at-a-time consumption.
pub fn run_row(mem: &mut MemoryHierarchy, t: &RowTable, q: &MicroQuery) -> Result<RunResult> {
    let cols = q.touched_cols();
    let preds: Vec<(usize, CmpOp, Value)> = q
        .sel
        .iter()
        .map(|(c, thr)| {
            let slot = cols
                .iter()
                .position(|x| x == c)
                .expect("sel col in touched");
            (slot, CmpOp::Lt, Value::I32(*thr))
        })
        .collect();

    mem.flush_caches();
    let t0 = mem.now();
    let costs = mem.costs();
    let scan = SeqScan::new(t, cols)?;
    let mut op: Box<dyn Operator> = if preds.is_empty() {
        Box::new(scan)
    } else {
        Box::new(Filter::new(Box::new(scan), preds))
    };

    let p = q.proj.len() as u64;
    let mut sum = 0.0f64;
    let mut tuple = Vec::new();
    while op.next(mem, &mut tuple)? {
        // Materialize the projected output tuple and consume it.
        mem.cpu(costs.value_op * p);
        for slot in 0..q.proj.len() {
            sum += tuple[slot].as_f64()?;
        }
    }
    Ok(RunResult {
        ns: mem.ns_since(t0),
        checksum: sum,
    })
}

/// COL engine: column-at-a-time selection passes, then batched tuple
/// reconstruction of the projected columns.
pub fn run_col(mem: &mut MemoryHierarchy, t: &ColTable, q: &MicroQuery) -> Result<RunResult> {
    mem.flush_caches();
    let t0 = mem.now();
    let costs = mem.costs();

    let sel: Option<Vec<u32>> = if q.sel.is_empty() {
        None
    } else {
        let mut it = q.sel.iter();
        let (c0, thr0) = it.next().unwrap();
        let mut sv = colx::scan_filter(mem, t, *c0, CmpOp::Lt, &Value::I32(*thr0))?;
        for (c, thr) in it {
            sv = colx::scan_filter_cand(mem, t, *c, &[(CmpOp::Lt, Value::I32(*thr))], &sv)?;
        }
        Some(sv)
    };

    let mut sum = 0.0f64;
    colx::reconstruct(mem, t, &q.proj, sel.as_deref(), |mem, batch| {
        mem.cpu(costs.value_op * batch.values.len() as u64);
        for v in &batch.values {
            sum += v.as_f64()?;
        }
        Ok(())
    })?;
    Ok(RunResult {
        ns: mem.ns_since(t0),
        checksum: sum,
    })
}

/// RM engine: one ephemeral column-group covering the touched columns;
/// predicates evaluated by the CPU over the packed data (the prototype
/// pushes projection, not selection — §IV-B keeps selection push-down as an
/// extension, measured separately in [`run_rm_pushdown`]).
pub fn run_rm(
    mem: &mut MemoryHierarchy,
    t: &RowTable,
    q: &MicroQuery,
    cfg: RmConfig,
) -> Result<RunResult> {
    let cols = q.touched_cols();
    let sel_fields: Vec<(usize, i32)> = q
        .sel
        .iter()
        .map(|(c, thr)| {
            let slot = cols
                .iter()
                .position(|x| x == c)
                .expect("sel col in touched");
            (slot, *thr)
        })
        .collect();

    mem.flush_caches();
    let t0 = mem.now();
    let costs = mem.costs();
    let g = t.geometry(&cols)?;
    let mut eph = EphemeralColumns::configure(mem, cfg, g)?;

    let p = q.proj.len() as u64;
    let mut sum = 0.0f64;
    while let Some(b) = eph.next_batch(mem) {
        for r in 0..b.len() {
            mem.cpu(costs.vector_elem);
            let mut pass = true;
            for (slot, thr) in &sel_fields {
                mem.cpu(costs.value_op);
                if b.i32_at(r, *slot) >= *thr {
                    pass = false;
                    mem.cpu(costs.branch_miss);
                    break;
                }
            }
            if pass {
                mem.cpu(costs.value_op * p);
                for slot in 0..q.proj.len() {
                    sum += b.i32_at(r, slot) as f64;
                }
            }
        }
    }
    Ok(RunResult {
        ns: mem.ns_since(t0),
        checksum: sum,
    })
}

/// RM with selection pushed into the device (§IV-B extension): the geometry
/// carries the predicate, so only qualifying rows' projected columns cross
/// the memory hierarchy.
pub fn run_rm_pushdown(
    mem: &mut MemoryHierarchy,
    t: &RowTable,
    q: &MicroQuery,
    cfg: RmConfig,
) -> Result<RunResult> {
    mem.flush_caches();
    let t0 = mem.now();
    let costs = mem.costs();

    let layout = t.layout();
    let mut pred = Predicate::always_true();
    for (c, thr) in &q.sel {
        pred = pred.and(ColumnPredicate::new(
            layout.field(*c)?,
            CmpOp::Lt,
            Value::I32(*thr),
        ));
    }
    let g = t.geometry(&q.proj)?.with_predicate(pred);
    let mut eph = EphemeralColumns::configure(mem, cfg, g)?;

    let p = q.proj.len() as u64;
    let mut sum = 0.0f64;
    while let Some(b) = eph.next_batch(mem) {
        for r in 0..b.len() {
            mem.cpu(costs.vector_elem + costs.value_op * p);
            for slot in 0..q.proj.len() {
                sum += b.i32_at(r, slot) as f64;
            }
        }
    }
    Ok(RunResult {
        ns: mem.ns_since(t0),
        checksum: sum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::SimConfig;

    fn setup(rows: usize) -> (MemoryHierarchy, SyntheticData) {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let d = SyntheticData::build(&mut mem, rows, 16, 1234).unwrap();
        (mem, d)
    }

    #[test]
    fn all_engines_agree_on_projection_checksum() {
        let (mut mem, d) = setup(4000);
        for p in [1usize, 4, 9] {
            let q = MicroQuery::projectivity(p);
            let row = run_row(&mut mem, &d.rows, &q).unwrap();
            let col = run_col(&mut mem, &d.cols, &q).unwrap();
            let rm = run_rm(&mut mem, &d.rows, &q, RmConfig::prototype()).unwrap();
            assert_eq!(row.checksum, col.checksum, "p={p}");
            assert_eq!(row.checksum, rm.checksum, "p={p}");
            assert!(row.ns > 0.0 && col.ns > 0.0 && rm.ns > 0.0);
        }
    }

    #[test]
    fn all_engines_agree_with_selection() {
        let (mut mem, d) = setup(4000);
        let q = MicroQuery::proj_sel(3, 2, 16, 0.7);
        let row = run_row(&mut mem, &d.rows, &q).unwrap();
        let col = run_col(&mut mem, &d.cols, &q).unwrap();
        let rm = run_rm(&mut mem, &d.rows, &q, RmConfig::prototype()).unwrap();
        let rm_pd = run_rm_pushdown(&mut mem, &d.rows, &q, RmConfig::prototype()).unwrap();
        assert_eq!(row.checksum, col.checksum);
        assert_eq!(row.checksum, rm.checksum);
        assert_eq!(row.checksum, rm_pd.checksum);
        // ~49% of rows qualify; checksum must be nonzero.
        assert!(row.checksum > 0.0);
    }

    #[test]
    fn overlapping_projection_and_selection_columns() {
        let (mut mem, d) = setup(2000);
        // proj 0..12 and sel on last 8 -> columns 8..12 are in both sets.
        let q = MicroQuery::proj_sel(12, 8, 16, 0.9);
        assert!(q.touched_cols().len() < 12 + 8);
        let row = run_row(&mut mem, &d.rows, &q).unwrap();
        let col = run_col(&mut mem, &d.cols, &q).unwrap();
        let rm = run_rm(&mut mem, &d.rows, &q, RmConfig::prototype()).unwrap();
        assert_eq!(row.checksum, col.checksum);
        assert_eq!(row.checksum, rm.checksum);
    }

    #[test]
    fn zero_selectivity_selects_nothing() {
        let (mut mem, d) = setup(1000);
        let q = MicroQuery::proj_sel(2, 1, 16, 0.0);
        let row = run_row(&mut mem, &d.rows, &q).unwrap();
        let rm = run_rm(&mut mem, &d.rows, &q, RmConfig::prototype()).unwrap();
        assert_eq!(row.checksum, 0.0);
        assert_eq!(rm.checksum, 0.0);
    }
}
