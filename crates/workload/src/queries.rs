//! TPC-H Q1 and Q6 for each engine — the workloads of paper Fig. 7.
//!
//! *Q1* is CPU-heavy (eight aggregates over ~98 % of the rows, grouped by
//! two flags): the paper observes all three layouts performing similarly.
//! *Q6* is movement-bound (a selective conjunction and one sum): the paper
//! observes RM winning by shipping only the four touched columns as one
//! dense stream.
//!
//! Every implementation returns a [`RunResult`] whose checksum folds all
//! result values together, so cross-engine agreement is testable.

use crate::tpch::{col, days_from_civil, Lineitem};
use crate::RunResult;
use colstore::exec as colx;
use fabric_sim::MemoryHierarchy;
use fabric_types::{AggFunc, CmpOp, ColumnPredicate, Expr, Predicate, Result, Value};
use relmem::{EphemeralColumns, RmConfig};
use rowstore::volcano::{AggExpr, Filter, HashAggregate, Operator, SeqScan};
use std::collections::BTreeMap;

/// Q1 date cutoff: 1998-12-01 minus 90 days.
pub fn q1_cutoff() -> u32 {
    days_from_civil(1998, 12, 1) - 90
}

/// Q6 parameters: shipdate in [1994-01-01, 1995-01-01), discount in
/// [0.05, 0.07], quantity < 24.
pub fn q6_dates() -> (u32, u32) {
    (days_from_civil(1994, 1, 1), days_from_civil(1995, 1, 1))
}

// ------------------------------------------------------------------- Q1

/// Per-group accumulator for Q1 (shared by the COL and RM paths; the ROW
/// path exercises the generic Volcano `HashAggregate` instead).
#[derive(Debug, Default, Clone)]
struct Q1Acc {
    sum_qty: f64,
    sum_base: f64,
    sum_disc_price: f64,
    sum_charge: f64,
    sum_disc: f64,
    count: u64,
}

impl Q1Acc {
    #[inline]
    fn update(&mut self, qty: f64, price: f64, disc: f64, tax: f64) {
        self.sum_qty += qty;
        self.sum_base += price;
        let disc_price = price * (1.0 - disc);
        self.sum_disc_price += disc_price;
        self.sum_charge += disc_price * (1.0 + tax);
        self.sum_disc += disc;
        self.count += 1;
    }

    fn checksum(&self) -> f64 {
        let n = self.count as f64;
        self.sum_qty
            + self.sum_base
            + self.sum_disc_price
            + self.sum_charge
            + self.sum_qty / n
            + self.sum_base / n
            + self.sum_disc / n
            + n
    }
}

fn q1_groups_checksum(groups: &BTreeMap<[u8; 2], Q1Acc>) -> f64 {
    // BTreeMap iterates in key order, so the sum order is deterministic
    // by construction (f64 addition is order-sensitive).
    groups.values().map(Q1Acc::checksum).sum()
}

/// Q1 on the Volcano row engine.
pub fn q1_row(mem: &mut MemoryHierarchy, li: &Lineitem) -> Result<RunResult> {
    mem.flush_caches();
    let t0 = mem.now();
    // Slots: 0 rf, 1 ls, 2 qty, 3 price, 4 disc, 5 tax, 6 shipdate.
    let scan = SeqScan::new(
        &li.rows,
        vec![
            col::RETURNFLAG,
            col::LINESTATUS,
            col::QUANTITY,
            col::EXTENDEDPRICE,
            col::DISCOUNT,
            col::TAX,
            col::SHIPDATE,
        ],
    )?;
    let filter = Filter::new(
        Box::new(scan),
        vec![(6, CmpOp::Le, Value::Date(q1_cutoff()))],
    );
    let one = || Expr::lit(Value::F64(1.0));
    let disc_price = Expr::mul(Expr::col(3), Expr::sub(one(), Expr::col(4)));
    let charge = Expr::mul(disc_price.clone(), Expr::add(one(), Expr::col(5)));
    let mut agg = HashAggregate::new(
        Box::new(filter),
        vec![0, 1],
        vec![
            AggExpr::new(AggFunc::Sum, Expr::col(2)),
            AggExpr::new(AggFunc::Sum, Expr::col(3)),
            AggExpr::new(AggFunc::Sum, disc_price),
            AggExpr::new(AggFunc::Sum, charge),
            AggExpr::new(AggFunc::Avg, Expr::col(2)),
            AggExpr::new(AggFunc::Avg, Expr::col(3)),
            AggExpr::new(AggFunc::Avg, Expr::col(4)),
            AggExpr::new(AggFunc::Count, Expr::col(2)),
        ],
    );
    let rows = rowstore::execute_collect(mem, &mut agg)?;
    let mut checksum = 0.0;
    for row in &rows {
        for v in &row[2..] {
            checksum += v.as_f64()?;
        }
    }
    Ok(RunResult {
        ns: mem.ns_since(t0),
        checksum,
    })
}

/// Q1 on the column engine: one selection pass, then lockstep aggregation
/// over six gathered columns (more streams than the prefetcher tracks).
pub fn q1_col(mem: &mut MemoryHierarchy, li: &Lineitem) -> Result<RunResult> {
    mem.flush_caches();
    let t0 = mem.now();
    let costs = mem.costs();
    let sel = colx::scan_filter(
        mem,
        &li.cols,
        col::SHIPDATE,
        CmpOp::Le,
        &Value::Date(q1_cutoff()),
    )?;
    let mut groups: BTreeMap<[u8; 2], Q1Acc> = BTreeMap::new();
    colx::for_each_lockstep(
        mem,
        &li.cols,
        &[
            col::RETURNFLAG,
            col::LINESTATUS,
            col::QUANTITY,
            col::EXTENDEDPRICE,
            col::DISCOUNT,
            col::TAX,
        ],
        Some(&sel),
        |mem, _, vals| {
            mem.cpu(costs.hash_op + costs.f64_op * 14);
            let rf = match &vals[0] {
                Value::Str(s) => s.as_bytes().first().copied().unwrap_or(0),
                _ => 0,
            };
            let ls = match &vals[1] {
                Value::Str(s) => s.as_bytes().first().copied().unwrap_or(0),
                _ => 0,
            };
            groups.entry([rf, ls]).or_default().update(
                vals[2].as_f64()?,
                vals[3].as_f64()?,
                vals[4].as_f64()?,
                vals[5].as_f64()?,
            );
            Ok(())
        },
    )?;
    Ok(RunResult {
        ns: mem.ns_since(t0),
        checksum: q1_groups_checksum(&groups),
    })
}

/// Q1 through Relational Memory: one ephemeral column group covering the
/// seven touched columns; predicate and aggregation on the CPU over packed
/// data.
pub fn q1_rm(mem: &mut MemoryHierarchy, li: &Lineitem, cfg: RmConfig) -> Result<RunResult> {
    mem.flush_caches();
    let t0 = mem.now();
    let costs = mem.costs();
    // Fields: 0 rf, 1 ls, 2 qty, 3 price, 4 disc, 5 tax, 6 shipdate.
    let g = li.rows.geometry(&[
        col::RETURNFLAG,
        col::LINESTATUS,
        col::QUANTITY,
        col::EXTENDEDPRICE,
        col::DISCOUNT,
        col::TAX,
        col::SHIPDATE,
    ])?;
    let mut eph = EphemeralColumns::configure(mem, cfg, g)?;
    let cutoff = q1_cutoff();
    let mut groups: BTreeMap<[u8; 2], Q1Acc> = BTreeMap::new();
    while let Some(b) = eph.next_batch(mem) {
        for r in 0..b.len() {
            mem.cpu(costs.vector_elem + costs.value_op);
            if b.u32_at(r, 6) > cutoff {
                mem.cpu(costs.branch_miss);
                continue;
            }
            mem.cpu(costs.hash_op + costs.f64_op * 14);
            groups
                .entry([b.byte_at(r, 0), b.byte_at(r, 1)])
                .or_default()
                .update(
                    b.f64_at(r, 2),
                    b.f64_at(r, 3),
                    b.f64_at(r, 4),
                    b.f64_at(r, 5),
                );
        }
    }
    Ok(RunResult {
        ns: mem.ns_since(t0),
        checksum: q1_groups_checksum(&groups),
    })
}

/// Q1 with the date predicate pushed into the device (§IV-B): only
/// qualifying rows' seven columns cross the hierarchy (~98 % qualify, so
/// the win over [`q1_rm`] is the removed per-row CPU check, not traffic).
pub fn q1_rm_pushdown(
    mem: &mut MemoryHierarchy,
    li: &Lineitem,
    cfg: RmConfig,
) -> Result<RunResult> {
    mem.flush_caches();
    let t0 = mem.now();
    let costs = mem.costs();
    let layout = li.rows.layout();
    let pred = Predicate::always_true().and(ColumnPredicate::new(
        layout.field(col::SHIPDATE)?,
        CmpOp::Le,
        Value::Date(q1_cutoff()),
    ));
    let g = li
        .rows
        .geometry(&[
            col::RETURNFLAG,
            col::LINESTATUS,
            col::QUANTITY,
            col::EXTENDEDPRICE,
            col::DISCOUNT,
            col::TAX,
        ])?
        .with_predicate(pred);
    let mut eph = EphemeralColumns::configure(mem, cfg, g)?;
    let mut groups: BTreeMap<[u8; 2], Q1Acc> = BTreeMap::new();
    while let Some(b) = eph.next_batch(mem) {
        for r in 0..b.len() {
            mem.cpu(costs.vector_elem + costs.hash_op + costs.f64_op * 14);
            groups
                .entry([b.byte_at(r, 0), b.byte_at(r, 1)])
                .or_default()
                .update(
                    b.f64_at(r, 2),
                    b.f64_at(r, 3),
                    b.f64_at(r, 4),
                    b.f64_at(r, 5),
                );
        }
    }
    Ok(RunResult {
        ns: mem.ns_since(t0),
        checksum: q1_groups_checksum(&groups),
    })
}

// ------------------------------------------------------------------- Q6

/// Q6 on the Volcano row engine.
pub fn q6_row(mem: &mut MemoryHierarchy, li: &Lineitem) -> Result<RunResult> {
    mem.flush_caches();
    let t0 = mem.now();
    let costs = mem.costs();
    let (lo, hi) = q6_dates();
    // Slots: 0 shipdate, 1 discount, 2 quantity, 3 price.
    let scan = SeqScan::new(
        &li.rows,
        vec![
            col::SHIPDATE,
            col::DISCOUNT,
            col::QUANTITY,
            col::EXTENDEDPRICE,
        ],
    )?;
    let mut filter = Filter::new(
        Box::new(scan),
        vec![
            (0, CmpOp::Ge, Value::Date(lo)),
            (0, CmpOp::Lt, Value::Date(hi)),
            (1, CmpOp::Ge, Value::F64(0.05)),
            (1, CmpOp::Le, Value::F64(0.07)),
            (2, CmpOp::Lt, Value::F64(24.0)),
        ],
    );
    let mut revenue = 0.0f64;
    let mut tuple = Vec::new();
    while filter.next(mem, &mut tuple)? {
        mem.cpu(costs.f64_op * 2);
        revenue += tuple[3].as_f64()? * tuple[1].as_f64()?;
    }
    Ok(RunResult {
        ns: mem.ns_since(t0),
        checksum: revenue,
    })
}

/// Q6 on the column engine: sequential range scan on shipdate, candidate
/// refinement on discount and quantity, then a two-column gather for the
/// sum.
pub fn q6_col(mem: &mut MemoryHierarchy, li: &Lineitem) -> Result<RunResult> {
    mem.flush_caches();
    let t0 = mem.now();
    let costs = mem.costs();
    let (lo, hi) = q6_dates();
    let sel = colx::scan_filter_conj(
        mem,
        &li.cols,
        col::SHIPDATE,
        &[(CmpOp::Ge, Value::Date(lo)), (CmpOp::Lt, Value::Date(hi))],
    )?;
    let sel = colx::scan_filter_cand(
        mem,
        &li.cols,
        col::DISCOUNT,
        &[(CmpOp::Ge, Value::F64(0.05)), (CmpOp::Le, Value::F64(0.07))],
        &sel,
    )?;
    let sel = colx::scan_filter_cand(
        mem,
        &li.cols,
        col::QUANTITY,
        &[(CmpOp::Lt, Value::F64(24.0))],
        &sel,
    )?;
    let mut revenue = 0.0f64;
    colx::for_each_lockstep(
        mem,
        &li.cols,
        &[col::EXTENDEDPRICE, col::DISCOUNT],
        Some(&sel),
        |mem, _, vals| {
            mem.cpu(costs.f64_op * 2);
            revenue += vals[0].as_f64()? * vals[1].as_f64()?;
            Ok(())
        },
    )?;
    Ok(RunResult {
        ns: mem.ns_since(t0),
        checksum: revenue,
    })
}

/// Q6 through Relational Memory: the four touched columns as one packed
/// stream, predicates on the CPU.
pub fn q6_rm(mem: &mut MemoryHierarchy, li: &Lineitem, cfg: RmConfig) -> Result<RunResult> {
    mem.flush_caches();
    let t0 = mem.now();
    let costs = mem.costs();
    let (lo, hi) = q6_dates();
    // Fields: 0 shipdate, 1 discount, 2 quantity, 3 price.
    let g = li.rows.geometry(&[
        col::SHIPDATE,
        col::DISCOUNT,
        col::QUANTITY,
        col::EXTENDEDPRICE,
    ])?;
    let mut eph = EphemeralColumns::configure(mem, cfg, g)?;
    let mut revenue = 0.0f64;
    while let Some(b) = eph.next_batch(mem) {
        for r in 0..b.len() {
            // Short-circuit qualification over the packed stream; the
            // qualifying branch is the rare (mispredicted) one.
            mem.cpu(costs.vector_elem + costs.value_op);
            let ship = b.u32_at(r, 0);
            if ship < lo {
                continue;
            }
            mem.cpu(costs.value_op);
            if ship >= hi {
                continue;
            }
            mem.cpu(costs.f64_op * 2);
            let disc = b.f64_at(r, 1);
            if !(0.05..=0.07).contains(&disc) {
                continue;
            }
            mem.cpu(costs.f64_op);
            let qty = b.f64_at(r, 2);
            if qty < 24.0 {
                mem.cpu(costs.branch_miss + costs.f64_op * 2);
                revenue += b.f64_at(r, 3) * disc;
            }
        }
    }
    Ok(RunResult {
        ns: mem.ns_since(t0),
        checksum: revenue,
    })
}

/// Q6 with selection pushed into the device (§IV-B): only qualifying rows'
/// `(price, discount)` pairs cross the hierarchy.
pub fn q6_rm_pushdown(
    mem: &mut MemoryHierarchy,
    li: &Lineitem,
    cfg: RmConfig,
) -> Result<RunResult> {
    mem.flush_caches();
    let t0 = mem.now();
    let costs = mem.costs();
    let (lo, hi) = q6_dates();
    let layout = li.rows.layout();
    let pred = Predicate::new(vec![
        ColumnPredicate::new(layout.field(col::SHIPDATE)?, CmpOp::Ge, Value::Date(lo)),
        ColumnPredicate::new(layout.field(col::SHIPDATE)?, CmpOp::Lt, Value::Date(hi)),
        ColumnPredicate::new(layout.field(col::DISCOUNT)?, CmpOp::Ge, Value::F64(0.05)),
        ColumnPredicate::new(layout.field(col::DISCOUNT)?, CmpOp::Le, Value::F64(0.07)),
        ColumnPredicate::new(layout.field(col::QUANTITY)?, CmpOp::Lt, Value::F64(24.0)),
    ]);
    let g = li
        .rows
        .geometry(&[col::EXTENDEDPRICE, col::DISCOUNT])?
        .with_predicate(pred);
    let mut eph = EphemeralColumns::configure(mem, cfg, g)?;
    let mut revenue = 0.0f64;
    while let Some(b) = eph.next_batch(mem) {
        for r in 0..b.len() {
            mem.cpu(costs.vector_elem + costs.f64_op * 2);
            revenue += b.f64_at(r, 0) * b.f64_at(r, 1);
        }
    }
    Ok(RunResult {
        ns: mem.ns_since(t0),
        checksum: revenue,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::SimConfig;

    fn setup(rows: usize) -> (MemoryHierarchy, Lineitem) {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let li = Lineitem::generate(&mut mem, rows, 2023).unwrap();
        (mem, li)
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0)
    }

    #[test]
    fn q1_engines_agree() {
        let (mut mem, li) = setup(20_000);
        let r = q1_row(&mut mem, &li).unwrap();
        let c = q1_col(&mut mem, &li).unwrap();
        let m = q1_rm(&mut mem, &li, RmConfig::prototype()).unwrap();
        assert!(
            close(r.checksum, c.checksum),
            "row={} col={}",
            r.checksum,
            c.checksum
        );
        assert!(
            close(r.checksum, m.checksum),
            "row={} rm={}",
            r.checksum,
            m.checksum
        );
        assert!(r.checksum > 0.0);
    }

    #[test]
    fn q1_pushdown_agrees_with_baseline() {
        let (mut mem, li) = setup(20_000);
        let r = q1_row(&mut mem, &li).unwrap();
        let p = q1_rm_pushdown(&mut mem, &li, RmConfig::prototype()).unwrap();
        assert!(
            close(r.checksum, p.checksum),
            "row={} push={}",
            r.checksum,
            p.checksum
        );
    }

    #[test]
    fn q6_engines_agree() {
        let (mut mem, li) = setup(20_000);
        let r = q6_row(&mut mem, &li).unwrap();
        let c = q6_col(&mut mem, &li).unwrap();
        let m = q6_rm(&mut mem, &li, RmConfig::prototype()).unwrap();
        let p = q6_rm_pushdown(&mut mem, &li, RmConfig::prototype()).unwrap();
        assert!(
            close(r.checksum, c.checksum),
            "row={} col={}",
            r.checksum,
            c.checksum
        );
        assert!(
            close(r.checksum, m.checksum),
            "row={} rm={}",
            r.checksum,
            m.checksum
        );
        assert!(
            close(r.checksum, p.checksum),
            "row={} push={}",
            r.checksum,
            p.checksum
        );
        // Q6 selectivity is ~2%; the revenue must be positive on 20k rows.
        assert!(r.checksum > 0.0);
    }

    #[test]
    fn q6_selectivity_is_about_two_percent() {
        let (mut mem, li) = setup(50_000);
        let (lo, hi) = q6_dates();
        let sel = colx::scan_filter_conj(
            &mut mem,
            &li.cols,
            col::SHIPDATE,
            &[(CmpOp::Ge, Value::Date(lo)), (CmpOp::Lt, Value::Date(hi))],
        )
        .unwrap();
        let sel = colx::refine_conj(
            &mut mem,
            &li.cols,
            col::DISCOUNT,
            &[(CmpOp::Ge, Value::F64(0.05)), (CmpOp::Le, Value::F64(0.07))],
            &sel,
        )
        .unwrap();
        let sel = colx::refine(
            &mut mem,
            &li.cols,
            col::QUANTITY,
            CmpOp::Lt,
            &Value::F64(24.0),
            &sel,
        )
        .unwrap();
        let s = sel.len() as f64 / 50_000.0;
        assert!((0.005..0.05).contains(&s), "selectivity {s}");
    }

    #[test]
    fn q1_touches_most_rows() {
        let (mut mem, li) = setup(20_000);
        let sel = colx::scan_filter(
            &mut mem,
            &li.cols,
            col::SHIPDATE,
            CmpOp::Le,
            &Value::Date(q1_cutoff()),
        )
        .unwrap();
        let s = sel.len() as f64 / 20_000.0;
        assert!(s > 0.9, "Q1 selectivity {s}");
    }
}
