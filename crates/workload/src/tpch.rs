//! A TPC-H-style `lineitem` generator.
//!
//! The paper evaluates Q1 and Q6 *"while varying the data size … based on
//! the size of target columns"* (Fig. 7). This module generates a
//! fixed-width `lineitem` with TPC-H's value distributions where they
//! matter (dates, discounts, quantities, flags) and a realistic ~152-byte
//! row, so the target-column-size axis maps onto the paper's table sizes:
//! a 128 MB Q6 target column group gives a ~700 MB table, matching the
//! 692 MB upper end of Fig. 7b.

use colstore::ColTable;
use fabric_sim::MemoryHierarchy;
use fabric_types::rng::DetRng;
use fabric_types::{ColumnType, Result, Schema, Value};
use rowstore::RowTable;

pub use fabric_types::value::days_from_civil;

/// Column indices of the generated `lineitem` schema.
pub mod col {
    pub const ORDERKEY: usize = 0;
    pub const PARTKEY: usize = 1;
    pub const SUPPKEY: usize = 2;
    pub const LINENUMBER: usize = 3;
    pub const QUANTITY: usize = 4;
    pub const EXTENDEDPRICE: usize = 5;
    pub const DISCOUNT: usize = 6;
    pub const TAX: usize = 7;
    pub const RETURNFLAG: usize = 8;
    pub const LINESTATUS: usize = 9;
    pub const SHIPDATE: usize = 10;
    pub const COMMITDATE: usize = 11;
    pub const RECEIPTDATE: usize = 12;
    pub const SHIPINSTRUCT: usize = 13;
    pub const SHIPMODE: usize = 14;
    pub const COMMENT: usize = 15;
}

/// The generated table in both base layouts.
pub struct Lineitem {
    pub rows: RowTable,
    pub cols: ColTable,
    pub num_rows: usize,
}

impl Lineitem {
    /// The fixed-width `lineitem` schema (152-byte rows).
    pub fn schema() -> Schema {
        Schema::from_pairs(&[
            ("l_orderkey", ColumnType::I64),
            ("l_partkey", ColumnType::I64),
            ("l_suppkey", ColumnType::I64),
            ("l_linenumber", ColumnType::I32),
            ("l_quantity", ColumnType::F64),
            ("l_extendedprice", ColumnType::F64),
            ("l_discount", ColumnType::F64),
            ("l_tax", ColumnType::F64),
            ("l_returnflag", ColumnType::FixedStr(1)),
            ("l_linestatus", ColumnType::FixedStr(1)),
            ("l_shipdate", ColumnType::Date),
            ("l_commitdate", ColumnType::Date),
            ("l_receiptdate", ColumnType::Date),
            ("l_shipinstruct", ColumnType::FixedStr(25)),
            ("l_shipmode", ColumnType::FixedStr(10)),
            ("l_comment", ColumnType::FixedStr(43)),
        ])
    }

    /// Row width in bytes of the generated table.
    pub fn row_width() -> usize {
        Self::schema().unpadded_width()
    }

    /// Width in bytes of the column group Q1 touches (its "target columns").
    pub fn q1_target_width() -> usize {
        8 + 8 + 8 + 8 + 1 + 1 + 4 // qty, price, disc, tax, rf, ls, shipdate
    }

    /// Width in bytes of the column group Q6 touches.
    pub fn q6_target_width() -> usize {
        4 + 8 + 8 + 8 // shipdate, qty, disc, price
    }

    /// Generate `num_rows` rows into both layouts, deterministically in
    /// `seed`. Loading is untimed (outside the measured window).
    pub fn generate(mem: &mut MemoryHierarchy, num_rows: usize, seed: u64) -> Result<Self> {
        let schema = Self::schema();
        let mut rows = RowTable::create(mem, schema.clone(), num_rows)?;
        let mut cols = ColTable::create(mem, schema, num_rows)?;
        let mut rng = DetRng::seed_from_u64(seed);

        let ship_lo = days_from_civil(1992, 1, 2) as i64;
        let ship_hi = days_from_civil(1998, 12, 1) as i64;
        let instructs = [
            "DELIVER IN PERSON",
            "COLLECT COD",
            "NONE",
            "TAKE BACK RETURN",
        ];
        let modes = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

        let mut orderkey = 1i64;
        let mut linenumber = 1i32;
        for _ in 0..num_rows {
            if linenumber > 7 || rng.gen_bool(0.25) {
                orderkey += 1;
                linenumber = 1;
            }
            let quantity = rng.gen_range(1..=50) as f64;
            let price_per_unit = rng.gen_range(900.0..=10_000.0f64);
            let extendedprice = (quantity * price_per_unit * 100.0).round() / 100.0;
            let discount = rng.gen_range(0..=10) as f64 / 100.0;
            let tax = rng.gen_range(0..=8) as f64 / 100.0;
            let shipdate = rng.gen_range(ship_lo..=ship_hi) as u32;
            let commitdate = shipdate.saturating_add(rng.gen_range(0..=60u32));
            let receiptdate = shipdate + rng.gen_range(1..=30u32);
            // TPC-H semantics: returnflag depends on receiptdate vs the
            // current date; linestatus on shipdate. Approximate with the
            // spec's cutoff of 1995-06-17.
            let cutoff = days_from_civil(1995, 6, 17);
            let returnflag = if receiptdate <= cutoff {
                if rng.gen_bool(0.5) {
                    "R"
                } else {
                    "A"
                }
            } else {
                "N"
            };
            let linestatus = if shipdate > cutoff { "O" } else { "F" };

            let row = [
                Value::I64(orderkey),
                Value::I64(rng.gen_range(1..=200_000)),
                Value::I64(rng.gen_range(1..=10_000)),
                Value::I32(linenumber),
                Value::F64(quantity),
                Value::F64(extendedprice),
                Value::F64(discount),
                Value::F64(tax),
                Value::Str(returnflag.into()),
                Value::Str(linestatus.into()),
                Value::Date(shipdate),
                Value::Date(commitdate),
                Value::Date(receiptdate),
                Value::Str(instructs[rng.gen_range(0..instructs.len())].into()),
                Value::Str(modes[rng.gen_range(0..modes.len())].into()),
                Value::Str("generated row comment".into()),
            ];
            rows.load(mem, &row)?;
            cols.load(mem, &row)?;
            linenumber += 1;
        }
        Ok(Lineitem {
            rows,
            cols,
            num_rows,
        })
    }

    /// Number of rows so the Q6 target column group occupies
    /// `target_mib` MiB (the x-axis of Fig. 7).
    pub fn rows_for_q6_target(target_mib: usize) -> usize {
        target_mib * 1024 * 1024 / Self::q6_target_width()
    }

    /// Number of rows so the Q1 target column group occupies
    /// `target_mib` MiB.
    pub fn rows_for_q1_target(target_mib: usize) -> usize {
        target_mib * 1024 * 1024 / Self::q1_target_width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::SimConfig;

    #[test]
    fn date_conversion_matches_known_values() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(1970, 1, 2), 1);
        assert_eq!(days_from_civil(1971, 1, 1), 365);
        assert_eq!(days_from_civil(2000, 3, 1), 11017);
        // 1994-01-01 (used by Q6): 8766 days.
        assert_eq!(days_from_civil(1994, 1, 1), 8766);
        assert_eq!(days_from_civil(1995, 1, 1), 9131);
        assert_eq!(days_from_civil(1998, 12, 1), 10561);
    }

    #[test]
    fn row_width_is_152_bytes() {
        assert_eq!(Lineitem::row_width(), 152);
        assert_eq!(Lineitem::q1_target_width(), 38);
        assert_eq!(Lineitem::q6_target_width(), 28);
    }

    #[test]
    fn table_size_matches_paper_fig7_range() {
        // 128 MiB Q6 target -> ~4.8M rows -> ~695 MiB table (paper: 692 MB).
        let rows = Lineitem::rows_for_q6_target(128);
        let table_mib = rows * Lineitem::row_width() / (1024 * 1024);
        assert!((680..=740).contains(&table_mib), "table is {table_mib} MiB");
        // 128 MiB Q1 target -> ~530 MiB table (paper: 545 MB).
        let rows = Lineitem::rows_for_q1_target(128);
        let table_mib = rows * Lineitem::row_width() / (1024 * 1024);
        assert!((500..=560).contains(&table_mib), "table is {table_mib} MiB");
    }

    #[test]
    fn generated_values_respect_domains() {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let li = Lineitem::generate(&mut mem, 2000, 99).unwrap();
        assert_eq!(li.rows.len(), 2000);
        let lo = days_from_civil(1992, 1, 2);
        let hi = days_from_civil(1998, 12, 1);
        for i in (0..2000).step_by(97) {
            let r = li.rows.decode_row_untimed(&mem, i).unwrap();
            let qty = r[col::QUANTITY].as_f64().unwrap();
            assert!((1.0..=50.0).contains(&qty));
            let disc = r[col::DISCOUNT].as_f64().unwrap();
            assert!((0.0..=0.1 + 1e-9).contains(&disc));
            let tax = r[col::TAX].as_f64().unwrap();
            assert!((0.0..=0.08 + 1e-9).contains(&tax));
            let ship = r[col::SHIPDATE].as_i64().unwrap() as u32;
            assert!((lo..=hi).contains(&ship));
            match &r[col::RETURNFLAG] {
                Value::Str(s) => assert!(["R", "A", "N"].contains(&s.as_str())),
                other => panic!("bad returnflag {other:?}"),
            }
            // Row and column layouts agree.
            for c in 0..16 {
                assert_eq!(r[c], li.cols.value_untimed(&mem, i, c).unwrap());
            }
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let mut m1 = MemoryHierarchy::new(SimConfig::zynq_a53());
        let a = Lineitem::generate(&mut m1, 100, 5).unwrap();
        let mut m2 = MemoryHierarchy::new(SimConfig::zynq_a53());
        let b = Lineitem::generate(&mut m2, 100, 5).unwrap();
        assert_eq!(
            a.rows.decode_row_untimed(&m1, 42).unwrap(),
            b.rows.decode_row_untimed(&m2, 42).unwrap()
        );
    }
}
