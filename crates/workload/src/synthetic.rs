//! The §V microbenchmark data set: 64-byte rows of 16 four-byte columns.
//!
//! *"we vary the projectivity from 1 to 11 columns for 4-byte wide columns
//! and 64-byte wide rows"* — this module builds exactly that table, loaded
//! identically into a row store and a column store so the three engines are
//! compared over the same logical data.

use colstore::ColTable;
use fabric_sim::MemoryHierarchy;
use fabric_types::rng::DetRng;
use fabric_types::{ColumnType, Result, Schema, Value};
use rowstore::RowTable;

/// Values are drawn uniformly from `0..VALUE_RANGE`, so a predicate
/// `col < VALUE_RANGE * s` has selectivity `s`.
pub const VALUE_RANGE: i32 = 1_000_000;

/// A synthetic wide table materialized in both base layouts.
pub struct SyntheticData {
    pub rows: RowTable,
    pub cols: ColTable,
    pub num_rows: usize,
    pub num_cols: usize,
}

impl SyntheticData {
    /// Build `num_rows` rows of `num_cols` i32 columns (row width =
    /// `4 * num_cols` bytes; 16 columns gives the paper's 64-byte rows).
    /// Deterministic in `seed`.
    pub fn build(
        mem: &mut MemoryHierarchy,
        num_rows: usize,
        num_cols: usize,
        seed: u64,
    ) -> Result<Self> {
        let schema = Schema::uniform(num_cols, ColumnType::I32);
        let mut rows = RowTable::create(mem, schema.clone(), num_rows)?;
        let mut cols = ColTable::create(mem, schema, num_rows)?;
        let mut rng = DetRng::seed_from_u64(seed);
        let mut buf: Vec<Value> = Vec::with_capacity(num_cols);
        for _ in 0..num_rows {
            buf.clear();
            for _ in 0..num_cols {
                buf.push(Value::I32(rng.gen_range(0..VALUE_RANGE)));
            }
            rows.load(mem, &buf)?;
            cols.load(mem, &buf)?;
        }
        Ok(SyntheticData {
            rows,
            cols,
            num_rows,
            num_cols,
        })
    }

    /// The threshold value for a predicate of selectivity `s` on any column.
    pub fn threshold(s: f64) -> i32 {
        (VALUE_RANGE as f64 * s).round() as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::SimConfig;

    #[test]
    fn builds_matching_layouts() {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let d = SyntheticData::build(&mut mem, 500, 16, 42).unwrap();
        assert_eq!(d.rows.len(), 500);
        assert_eq!(d.cols.len(), 500);
        assert_eq!(d.rows.layout().row_width(), 64);
        // Same logical values in both layouts.
        for row in [0usize, 123, 499] {
            let r = d.rows.decode_row_untimed(&mem, row).unwrap();
            for c in 0..16 {
                assert_eq!(r[c], d.cols.value_untimed(&mem, row, c).unwrap());
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let mut m1 = MemoryHierarchy::new(SimConfig::zynq_a53());
        let d1 = SyntheticData::build(&mut m1, 100, 16, 7).unwrap();
        let mut m2 = MemoryHierarchy::new(SimConfig::zynq_a53());
        let d2 = SyntheticData::build(&mut m2, 100, 16, 7).unwrap();
        assert_eq!(
            d1.rows.decode_row_untimed(&m1, 50).unwrap(),
            d2.rows.decode_row_untimed(&m2, 50).unwrap()
        );
        let mut m3 = MemoryHierarchy::new(SimConfig::zynq_a53());
        let d3 = SyntheticData::build(&mut m3, 100, 16, 8).unwrap();
        assert_ne!(
            d1.rows.decode_row_untimed(&m1, 50).unwrap(),
            d3.rows.decode_row_untimed(&m3, 50).unwrap()
        );
    }

    #[test]
    fn threshold_matches_selectivity() {
        assert_eq!(SyntheticData::threshold(0.5), VALUE_RANGE / 2);
        assert_eq!(SyntheticData::threshold(1.0), VALUE_RANGE);
        assert_eq!(SyntheticData::threshold(0.0), 0);
    }
}
