//! Shared vocabulary for the Relational Fabric reproduction.
//!
//! Every other crate in the workspace speaks in terms of the types defined
//! here: relational [`Schema`]s, fixed-width [`RowLayout`]s, scalar
//! [`Value`]s, conjunctive [`Predicate`]s, and — most importantly — the
//! [`Geometry`] descriptor, the "intuitive API" of the paper: a complete,
//! self-contained description of *which bytes of which rows* an ephemeral
//! access wants, and in what output shape.
//!
//! The paper (§II) calls arbitrary subsets of relational data "data
//! geometries"; [`Geometry`] is the direct encoding of that idea. It is what
//! the software hands to the Relational Memory device model (`relmem`), to
//! the computational-SSD controller (`relstore`), and to the query
//! optimizer's cost model (`query`).

pub mod cast;
pub mod crc;
pub mod error;
pub mod expr;
pub mod geometry;
pub mod layout;
pub mod predicate;
pub mod rng;
pub mod schema;
pub mod value;

pub use crc::{crc32, Crc32};
pub use error::{FabricError, Result};
pub use expr::{Expr, ValueAgg};
pub use geometry::{AggFunc, AggSpec, FieldSlice, Geometry, OutputMode, TsFilter};
pub use layout::RowLayout;
pub use predicate::{CmpOp, ColumnPredicate, Predicate};
pub use rng::DetRng;
pub use schema::{ColumnDef, ColumnId, ColumnType, Schema};
pub use value::{le_array, Value};

/// A byte address inside a simulated memory arena.
pub type Addr = u64;

/// The cache-line size every component of the reproduction assumes (bytes).
///
/// Both the Cortex-A53 platform of the paper and the simulated hierarchy in
/// `fabric-sim` use 64-byte lines; the RM device packs its output into units
/// of this size.
pub const CACHE_LINE: usize = 64;
