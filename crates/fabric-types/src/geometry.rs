//! Data geometries — the paper's core abstraction.
//!
//! §II: *"Relational Fabric exposes a carefully designed API, termed
//! ephemeral columns, that enables accessing arbitrary data geometries (i.e.,
//! any subset of data from relational tables) using simple abstractions."*
//!
//! A [`Geometry`] is the wire format of that API: a self-contained
//! description the CPU hands to the fabric device. It names the base region
//! (address, row width, row count), the requested fields, and the output
//! shape — packed column groups, whole filtered rows, or aggregates — plus
//! optional predicate and MVCC timestamp filters the device applies while
//! gathering.

use crate::error::{FabricError, Result};
use crate::schema::{ColumnId, ColumnType};
use crate::Addr;

/// Location and type of one column inside a raw fixed-width row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FieldSlice {
    /// Schema column this slice reads (for bookkeeping / display).
    pub column: ColumnId,
    /// Byte offset from the start of the row.
    pub offset: usize,
    /// Physical type; determines the width.
    pub ty: ColumnType,
}

impl FieldSlice {
    pub fn new(column: ColumnId, offset: usize, ty: ColumnType) -> Self {
        FieldSlice { column, offset, ty }
    }

    /// Width in bytes.
    pub fn width(&self) -> usize {
        self.ty.width()
    }

    /// Byte range within a row buffer.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.offset..self.offset + self.width()
    }
}

/// MVCC visibility filter applied by the device (paper §III-C).
///
/// Every versioned row carries two timestamps; a row is visible at snapshot
/// `ts` iff `begin <= ts && (end == 0 || ts < end)` (`end == 0` means "still
/// live"). *"A key advantage of this approach is that the timestamp
/// comparison can be implemented in hardware."*
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TsFilter {
    /// Field holding the begin (creation) timestamp, an `I64`.
    pub begin: FieldSlice,
    /// Field holding the end (invalidation) timestamp, an `I64`; 0 = live.
    pub end: FieldSlice,
    /// The reader's snapshot timestamp.
    pub snapshot_ts: u64,
}

impl TsFilter {
    /// The hardware visibility comparator.
    pub fn visible_raw(&self, row: &[u8]) -> bool {
        let begin = read_u64(row, self.begin.offset);
        let end = read_u64(row, self.end.offset);
        begin <= self.snapshot_ts && (end == 0 || self.snapshot_ts < end)
    }
}

fn read_u64(row: &[u8], offset: usize) -> u64 {
    u64::from_le_bytes(crate::value::le_array(&row[offset..offset + 8]))
}

/// Aggregate functions the fabric can compute in-device (paper §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }
}

/// One aggregate requested from the device.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AggSpec {
    pub func: AggFunc,
    /// Field aggregated over; `None` only for `Count`.
    pub field: Option<FieldSlice>,
}

impl AggSpec {
    pub fn count() -> Self {
        AggSpec {
            func: AggFunc::Count,
            field: None,
        }
    }

    pub fn over(func: AggFunc, field: FieldSlice) -> Self {
        AggSpec {
            func,
            field: Some(field),
        }
    }
}

/// Shape of the data the device returns.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum OutputMode {
    /// Densely packed column-group rows: for each qualifying base row, the
    /// requested fields concatenated back to back (paper's ephemeral
    /// *columns*).
    PackedColumns,
    /// Entire qualifying rows (ephemeral *rows*: hardware selection §IV-B).
    FilteredRows,
    /// Only aggregate results leave the device (hardware aggregation §IV-B).
    Aggregate(Vec<AggSpec>),
}

/// Merge a set of fields into maximal disjoint `(offset, len)` byte spans
/// within a row, sorted by offset. Gaps of at most `slack` bytes are bridged
/// (useful when fetching granularity is a cache line anyway).
pub fn merge_field_spans(fields: &[FieldSlice], slack: usize) -> Vec<(usize, usize)> {
    let mut raw: Vec<(usize, usize)> = fields.iter().map(|f| (f.offset, f.width())).collect();
    raw.sort_unstable();
    let mut spans: Vec<(usize, usize)> = Vec::new();
    for (off, len) in raw {
        match spans.last_mut() {
            Some((soff, slen)) if off <= *soff + *slen + slack => {
                let end = (off + len).max(*soff + *slen);
                *slen = end - *soff;
            }
            _ => spans.push((off, len)),
        }
    }
    spans
}

/// A complete ephemeral-access descriptor.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Geometry {
    /// Address of row 0 in the memory arena.
    pub base: Addr,
    /// Width of one base row in bytes (including padding / MVCC headers).
    pub row_width: usize,
    /// Number of base rows.
    pub rows: usize,
    /// Requested fields, in output order.
    pub fields: Vec<FieldSlice>,
    /// Device-evaluated selection (empty = all rows qualify).
    pub predicate: crate::predicate::Predicate,
    /// Device-evaluated MVCC visibility filter.
    pub visibility: Option<TsFilter>,
    /// Output shape.
    pub mode: OutputMode,
}

impl Geometry {
    /// A plain packed-column-group geometry with no filters.
    pub fn packed(base: Addr, row_width: usize, rows: usize, fields: Vec<FieldSlice>) -> Self {
        Geometry {
            base,
            row_width,
            rows,
            fields,
            predicate: crate::predicate::Predicate::always_true(),
            visibility: None,
            mode: OutputMode::PackedColumns,
        }
    }

    /// Attach a selection predicate (device-side filtering).
    pub fn with_predicate(mut self, predicate: crate::predicate::Predicate) -> Self {
        self.predicate = predicate;
        self
    }

    /// Attach an MVCC snapshot filter.
    pub fn with_visibility(mut self, filter: TsFilter) -> Self {
        self.visibility = Some(filter);
        self
    }

    /// Switch the output mode.
    pub fn with_mode(mut self, mode: OutputMode) -> Self {
        self.mode = mode;
        self
    }

    /// Bytes of payload one qualifying row contributes to the output.
    pub fn output_row_width(&self) -> usize {
        match &self.mode {
            OutputMode::PackedColumns => self.fields.iter().map(|f| f.width()).sum(),
            OutputMode::FilteredRows => self.row_width,
            OutputMode::Aggregate(_) => 0,
        }
    }

    /// Total bytes of base data the geometry spans.
    pub fn base_bytes(&self) -> usize {
        self.rows * self.row_width
    }

    /// Distinct source columns the device must *touch* per row: requested
    /// fields plus predicate and visibility fields. This drives the device's
    /// source-traffic model.
    pub fn touched_fields(&self) -> Vec<FieldSlice> {
        let mut out: Vec<FieldSlice> = Vec::new();
        let mut push = |f: FieldSlice| {
            if !out.iter().any(|g| g.offset == f.offset && g.ty == f.ty) {
                out.push(f);
            }
        };
        for f in &self.fields {
            push(*f);
        }
        for c in self.predicate.conjuncts() {
            push(c.field);
        }
        if let Some(v) = &self.visibility {
            push(v.begin);
            push(v.end);
        }
        if let OutputMode::Aggregate(specs) = &self.mode {
            for s in specs {
                if let Some(f) = s.field {
                    push(f);
                }
            }
        }
        out
    }

    /// Validate internal consistency: fields within the row, non-empty
    /// request, sane mode.
    pub fn validate(&self) -> Result<()> {
        if self.row_width == 0 {
            return Err(FabricError::InvalidGeometry(
                "row width must be positive".into(),
            ));
        }
        let check = |f: &FieldSlice| -> Result<()> {
            if f.offset + f.width() > self.row_width {
                return Err(FabricError::GeometryOutOfBounds {
                    offset: f.offset,
                    width: f.width(),
                    row_width: self.row_width,
                });
            }
            Ok(())
        };
        for f in self.touched_fields() {
            check(&f)?;
        }
        match &self.mode {
            OutputMode::PackedColumns if self.fields.is_empty() => Err(
                FabricError::InvalidGeometry("packed-columns geometry with no fields".into()),
            ),
            OutputMode::Aggregate(specs) if specs.is_empty() => Err(FabricError::InvalidGeometry(
                "aggregate geometry with no aggregates".into(),
            )),
            OutputMode::Aggregate(specs) => {
                for s in specs {
                    match (s.func, s.field) {
                        (AggFunc::Count, _) => {}
                        (_, None) => {
                            return Err(FabricError::InvalidGeometry(format!(
                                "{} requires a field",
                                s.func.name()
                            )))
                        }
                        (_, Some(f)) if !f.ty.is_numeric() => {
                            return Err(FabricError::InvalidGeometry(format!(
                                "{} over non-numeric column {}",
                                s.func.name(),
                                f.column
                            )))
                        }
                        _ => {}
                    }
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CmpOp, ColumnPredicate, Predicate};
    use crate::value::Value;

    fn f(col: usize, offset: usize) -> FieldSlice {
        FieldSlice::new(col, offset, ColumnType::I32)
    }

    #[test]
    fn output_row_width_by_mode() {
        let g = Geometry::packed(0, 64, 100, vec![f(0, 0), f(5, 20), f(9, 36)]);
        assert_eq!(g.output_row_width(), 12);
        assert_eq!(
            g.clone()
                .with_mode(OutputMode::FilteredRows)
                .output_row_width(),
            64
        );
        assert_eq!(
            g.with_mode(OutputMode::Aggregate(vec![AggSpec::count()]))
                .output_row_width(),
            0
        );
    }

    #[test]
    fn touched_fields_dedup_and_include_predicate() {
        let pred = Predicate::always_true()
            .and(ColumnPredicate::new(f(5, 20), CmpOp::Gt, Value::I32(0)))
            .and(ColumnPredicate::new(f(7, 28), CmpOp::Lt, Value::I32(9)));
        let g = Geometry::packed(0, 64, 10, vec![f(0, 0), f(5, 20)]).with_predicate(pred);
        let touched = g.touched_fields();
        assert_eq!(touched.len(), 3); // c0, c5 (deduped), c7
    }

    #[test]
    fn validate_rejects_out_of_bounds() {
        let g = Geometry::packed(0, 64, 10, vec![f(0, 61)]);
        assert!(matches!(
            g.validate(),
            Err(FabricError::GeometryOutOfBounds {
                offset: 61,
                width: 4,
                row_width: 64
            })
        ));
    }

    #[test]
    fn validate_rejects_empty_requests() {
        let g = Geometry::packed(0, 64, 10, vec![]);
        assert!(g.validate().is_err());
        let g = Geometry::packed(0, 64, 10, vec![f(0, 0)]).with_mode(OutputMode::Aggregate(vec![]));
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_rejects_sum_without_field_or_string_field() {
        let g = Geometry::packed(0, 64, 10, vec![f(0, 0)]).with_mode(OutputMode::Aggregate(vec![
            AggSpec {
                func: AggFunc::Sum,
                field: None,
            },
        ]));
        assert!(g.validate().is_err());
        let strf = FieldSlice::new(1, 4, ColumnType::FixedStr(8));
        let g = Geometry::packed(0, 64, 10, vec![f(0, 0)]).with_mode(OutputMode::Aggregate(vec![
            AggSpec::over(AggFunc::Sum, strf),
        ]));
        assert!(g.validate().is_err());
    }

    #[test]
    fn ts_filter_visibility() {
        // begin at offset 0, end at offset 8.
        let mut row = vec![0u8; 16];
        row[..8].copy_from_slice(&10u64.to_le_bytes());
        row[8..].copy_from_slice(&20u64.to_le_bytes());
        let mk = |ts| TsFilter {
            begin: FieldSlice::new(0, 0, ColumnType::I64),
            end: FieldSlice::new(1, 8, ColumnType::I64),
            snapshot_ts: ts,
        };
        assert!(!mk(9).visible_raw(&row)); // before begin
        assert!(mk(10).visible_raw(&row)); // at begin
        assert!(mk(19).visible_raw(&row)); // before end
        assert!(!mk(20).visible_raw(&row)); // at end: invisible
        row[8..].copy_from_slice(&0u64.to_le_bytes()); // live row
        assert!(mk(1_000_000).visible_raw(&row));
    }

    #[test]
    fn base_bytes() {
        let g = Geometry::packed(128, 64, 1000, vec![f(0, 0)]);
        assert_eq!(g.base_bytes(), 64_000);
    }
}
