//! Error type shared across the workspace.

use std::fmt;

/// Errors produced anywhere in the Relational Fabric stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// A named column does not exist in the schema.
    UnknownColumn(String),
    /// A column index is out of range for the schema.
    ColumnIndexOutOfRange { index: usize, len: usize },
    /// A row position (e.g. from a selection vector) is out of range for
    /// the table.
    RowIndexOutOfRange { index: usize, len: usize },
    /// Two values/columns had incompatible types for an operation.
    TypeMismatch { expected: String, found: String },
    /// A geometry referenced bytes outside its base region.
    GeometryOutOfBounds {
        offset: usize,
        width: usize,
        row_width: usize,
    },
    /// A geometry is structurally invalid (empty field list, zero rows, ...).
    InvalidGeometry(String),
    /// An arena allocation or access was out of bounds.
    ArenaOutOfBounds { addr: u64, len: usize, size: usize },
    /// Attempt to allocate more memory than the arena can hold.
    ArenaExhausted { requested: usize, available: usize },
    /// Transaction-level failure (conflict, state error).
    Txn(String),
    /// Codec failure (corrupt stream, unsupported shape).
    Codec(String),
    /// SQL front-end failure (lex/parse/bind).
    Sql(String),
    /// Storage-device failure.
    Storage(String),
    /// A simulated device failed to deliver within its retry budget
    /// (engine hang, bus timeout, or an open circuit breaker).
    DeviceTimeout {
        /// Which device timed out (`"rm-engine"`, `"relstore-ssd"`, ...).
        device: String,
        /// Delivery attempts made before giving up (0 = breaker open,
        /// the device was not even tried).
        attempts: u32,
    },
    /// A delivered batch failed its CRC32 frame check on every retry:
    /// the data is corrupt and must not be consumed.
    CorruptBatch {
        /// Producing device or link (`"rm-engine"`, `"host-link"`, ...).
        device: String,
        /// Delivery attempts made before giving up.
        attempts: u32,
    },
    /// A flash page could not be read (latent sector error persisting
    /// across the retry budget).
    FlashReadError { page: u64, attempts: u32 },
    /// A flash page could not be programmed within the retry budget.
    FlashWriteError { page: u64, attempts: u32 },
    /// Simulated power cut during a durable write. Everything in volatile
    /// state is gone; only bytes already on the medium survive, and the
    /// in-flight write may be torn. Recovery goes through `replay()`.
    PowerLoss {
        /// The durable device that lost power (`"wal"`, `"relstore-ssd"`).
        device: String,
        /// Durable writes fully completed before the cut.
        writes_done: u64,
    },
    /// Catch-all for invariant violations that indicate a library bug.
    Internal(String),
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            FabricError::ColumnIndexOutOfRange { index, len } => {
                write!(
                    f,
                    "column index {index} out of range for schema with {len} columns"
                )
            }
            FabricError::RowIndexOutOfRange { index, len } => {
                write!(
                    f,
                    "row index {index} out of range for table with {len} rows"
                )
            }
            FabricError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            FabricError::GeometryOutOfBounds {
                offset,
                width,
                row_width,
            } => write!(
                f,
                "geometry field at offset {offset} width {width} exceeds row width {row_width}"
            ),
            FabricError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            FabricError::ArenaOutOfBounds { addr, len, size } => {
                write!(
                    f,
                    "arena access at {addr:#x}+{len} out of bounds (size {size})"
                )
            }
            FabricError::ArenaExhausted {
                requested,
                available,
            } => {
                write!(
                    f,
                    "arena exhausted: requested {requested} bytes, {available} available"
                )
            }
            FabricError::Txn(msg) => write!(f, "transaction error: {msg}"),
            FabricError::Codec(msg) => write!(f, "codec error: {msg}"),
            FabricError::Sql(msg) => write!(f, "SQL error: {msg}"),
            FabricError::Storage(msg) => write!(f, "storage error: {msg}"),
            FabricError::DeviceTimeout { device, attempts } => {
                write!(f, "device `{device}` timed out after {attempts} attempts")
            }
            FabricError::CorruptBatch { device, attempts } => {
                write!(
                    f,
                    "batch from `{device}` failed CRC after {attempts} attempts"
                )
            }
            FabricError::FlashReadError { page, attempts } => {
                write!(f, "flash page {page} unreadable after {attempts} attempts")
            }
            FabricError::FlashWriteError { page, attempts } => {
                write!(
                    f,
                    "flash page {page} failed to program after {attempts} attempts"
                )
            }
            FabricError::PowerLoss {
                device,
                writes_done,
            } => {
                write!(
                    f,
                    "power loss on `{device}` after {writes_done} durable writes"
                )
            }
            FabricError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for FabricError {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, FabricError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = FabricError::UnknownColumn("l_tax".into());
        assert!(e.to_string().contains("l_tax"));
        let e = FabricError::GeometryOutOfBounds {
            offset: 60,
            width: 8,
            row_width: 64,
        };
        assert!(e.to_string().contains("60"));
        assert!(e.to_string().contains("64"));
    }

    #[test]
    fn fault_variants_render_device_and_attempts() {
        let e = FabricError::DeviceTimeout {
            device: "rm-engine".into(),
            attempts: 4,
        };
        assert!(e.to_string().contains("rm-engine"));
        assert!(e.to_string().contains('4'));
        let e = FabricError::CorruptBatch {
            device: "host-link".into(),
            attempts: 3,
        };
        assert!(e.to_string().contains("CRC"));
        let e = FabricError::FlashReadError {
            page: 17,
            attempts: 4,
        };
        assert!(e.to_string().contains("17"));
        let e = FabricError::FlashWriteError {
            page: 23,
            attempts: 4,
        };
        assert!(e.to_string().contains("23"));
        assert!(e.to_string().contains("program"));
        let e = FabricError::PowerLoss {
            device: "wal".into(),
            writes_done: 9,
        };
        assert!(e.to_string().contains("wal"));
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&FabricError::Internal("x".into()));
    }
}
