//! CRC-32 framing for delivered data.
//!
//! The fault-tolerance layer (see DESIGN.md §9) frames every unit of data
//! that crosses a simulated device boundary — RM delivery batches, flash
//! pages, host-link shipments — with a CRC-32 so consumers can *detect*
//! injected corruption and trigger redelivery instead of silently consuming
//! flipped bits. The polynomial is the ubiquitous reflected IEEE 802.3 one
//! (CRC-32/ISO-HDLC, the `zlib`/`ethernet` CRC), table-driven and std-only
//! like the rest of the workspace.

/// The reflected IEEE 802.3 polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32/ISO-HDLC of `bytes` (init `!0`, reflected, final xor `!0`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_check_value() {
        // The standard CRC-32 check vector: "123456789" -> 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let clean = crc32(&data);
        for (byte, bit) in [(0usize, 0u8), (17, 3), (4095, 7), (2048, 5)] {
            let mut corrupt = data.clone();
            corrupt[byte] ^= 1 << bit;
            assert_ne!(crc32(&corrupt), clean, "flip at {byte}:{bit} undetected");
        }
    }

    #[test]
    fn is_a_pure_function_of_the_bytes() {
        assert_eq!(crc32(b"relational fabric"), crc32(b"relational fabric"));
        assert_ne!(crc32(b"relational fabric"), crc32(b"relational fabrik"));
    }
}
