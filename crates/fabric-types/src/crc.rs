//! CRC-32 framing for delivered data.
//!
//! The fault-tolerance layer (see DESIGN.md §9) frames every unit of data
//! that crosses a simulated device boundary — RM delivery batches, flash
//! pages, host-link shipments — with a CRC-32 so consumers can *detect*
//! injected corruption and trigger redelivery instead of silently consuming
//! flipped bits. The polynomial is the ubiquitous reflected IEEE 802.3 one
//! (CRC-32/ISO-HDLC, the `zlib`/`ethernet` CRC), table-driven and std-only
//! like the rest of the workspace.

/// The reflected IEEE 802.3 polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32/ISO-HDLC of `bytes` (init `!0`, reflected, final xor `!0`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finalize()
}

/// Streaming CRC-32/ISO-HDLC hasher: `init` / `update` / `finalize`.
///
/// WAL records and multi-fragment pages are framed incrementally — header,
/// then payload, then more payload — without ever materializing one
/// contiguous buffer. Feeding the same bytes in any fragmentation yields
/// exactly the one-shot [`crc32`] value.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh hasher (state `!0`, the standard init value).
    pub fn new() -> Self {
        Crc32 { state: !0u32 }
    }

    /// Absorb `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state = (self.state >> 8) ^ TABLE[((self.state ^ b as u32) & 0xFF) as usize];
        }
        self
    }

    /// The checksum of everything absorbed so far (final xor applied).
    /// Non-consuming, so a caller can frame a running prefix and keep
    /// absorbing.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_check_value() {
        // The standard CRC-32 check vector: "123456789" -> 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let clean = crc32(&data);
        for (byte, bit) in [(0usize, 0u8), (17, 3), (4095, 7), (2048, 5)] {
            let mut corrupt = data.clone();
            corrupt[byte] ^= 1 << bit;
            assert_ne!(crc32(&corrupt), clean, "flip at {byte}:{bit} undetected");
        }
    }

    #[test]
    fn is_a_pure_function_of_the_bytes() {
        assert_eq!(crc32(b"relational fabric"), crc32(b"relational fabric"));
        assert_ne!(crc32(b"relational fabric"), crc32(b"relational fabrik"));
    }

    #[test]
    fn streaming_matches_one_shot_under_any_fragmentation() {
        let data: Vec<u8> = (0..=255u8).cycle().take(3000).collect();
        let whole = crc32(&data);
        for chunk in [1usize, 3, 7, 64, 999, 3000] {
            let mut h = Crc32::new();
            for frag in data.chunks(chunk) {
                h.update(frag);
            }
            assert_eq!(h.finalize(), whole, "chunk size {chunk} diverged");
        }
        // Empty updates are no-ops.
        let mut h = Crc32::new();
        h.update(&[]).update(&data).update(&[]);
        assert_eq!(h.finalize(), whole);
    }

    #[test]
    fn streaming_finalize_is_non_consuming() {
        let mut h = Crc32::new();
        h.update(b"1234");
        let prefix = h.finalize();
        assert_eq!(prefix, crc32(b"1234"));
        h.update(b"56789");
        assert_eq!(h.finalize(), 0xCBF4_3926, "check vector after resume");
        assert_eq!(Crc32::default().finalize(), crc32(b""));
    }
}
