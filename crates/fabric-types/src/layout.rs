//! Physical row layouts.
//!
//! A [`RowLayout`] maps each schema column to a byte offset within a
//! fixed-width row, optionally padding the row to a target width (the paper's
//! microbenchmarks use 64-byte rows so one row is exactly one cache line).

use crate::error::{FabricError, Result};
use crate::geometry::FieldSlice;
use crate::schema::{ColumnId, ColumnType, Schema};

/// Byte-level placement of a schema's columns within a fixed-width row.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RowLayout {
    offsets: Vec<usize>,
    types: Vec<ColumnType>,
    row_width: usize,
}

impl RowLayout {
    /// Packed layout: columns laid out back to back in schema order,
    /// no padding.
    pub fn packed(schema: &Schema) -> Self {
        let mut offsets = Vec::with_capacity(schema.len());
        let mut types = Vec::with_capacity(schema.len());
        let mut off = 0usize;
        for (_, col) in schema.iter() {
            offsets.push(off);
            types.push(col.ty);
            off += col.ty.width();
        }
        RowLayout {
            offsets,
            types,
            row_width: off,
        }
    }

    /// Packed layout padded up to `row_width` bytes.
    ///
    /// Errors if the columns do not fit.
    pub fn padded(schema: &Schema, row_width: usize) -> Result<Self> {
        let mut layout = Self::packed(schema);
        if layout.row_width > row_width {
            return Err(FabricError::InvalidGeometry(format!(
                "columns need {} bytes, requested row width is {row_width}",
                layout.row_width
            )));
        }
        layout.row_width = row_width;
        Ok(layout)
    }

    /// Packed layout padded up to the next multiple of `align` bytes.
    pub fn aligned(schema: &Schema, align: usize) -> Self {
        let mut layout = Self::packed(schema);
        let rem = layout.row_width % align;
        if rem != 0 {
            layout.row_width += align - rem;
        }
        layout
    }

    /// Total row width in bytes, including padding.
    pub fn row_width(&self) -> usize {
        self.row_width
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.offsets.len()
    }

    /// Byte offset of column `id` within a row.
    pub fn offset(&self, id: ColumnId) -> Result<usize> {
        self.offsets
            .get(id)
            .copied()
            .ok_or(FabricError::ColumnIndexOutOfRange {
                index: id,
                len: self.offsets.len(),
            })
    }

    /// Physical type of column `id`.
    pub fn column_type(&self, id: ColumnId) -> Result<ColumnType> {
        self.types
            .get(id)
            .copied()
            .ok_or(FabricError::ColumnIndexOutOfRange {
                index: id,
                len: self.types.len(),
            })
    }

    /// Byte width of column `id`.
    pub fn width(&self, id: ColumnId) -> Result<usize> {
        Ok(self.column_type(id)?.width())
    }

    /// The field slice describing column `id`, as used in
    /// [`crate::geometry::Geometry`] field lists.
    pub fn field(&self, id: ColumnId) -> Result<FieldSlice> {
        Ok(FieldSlice::new(id, self.offset(id)?, self.column_type(id)?))
    }

    /// Field slices for a list of columns, preserving the requested order.
    pub fn fields(&self, ids: &[ColumnId]) -> Result<Vec<FieldSlice>> {
        ids.iter().map(|&id| self.field(id)).collect()
    }

    /// Byte range of column `id` within a row buffer.
    pub fn range(&self, id: ColumnId) -> Result<std::ops::Range<usize>> {
        let off = self.offset(id)?;
        Ok(off..off + self.width(id)?)
    }

    /// Sum of the widths of `ids` — the payload bytes an ephemeral access to
    /// those columns moves per row.
    pub fn group_width(&self, ids: &[ColumnId]) -> Result<usize> {
        let mut total = 0;
        for &id in ids {
            total += self.width(id)?;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn paper_schema() -> Schema {
        Schema::uniform(16, ColumnType::I32)
    }

    #[test]
    fn packed_offsets() {
        let layout = RowLayout::packed(&paper_schema());
        assert_eq!(layout.row_width(), 64);
        assert_eq!(layout.offset(0).unwrap(), 0);
        assert_eq!(layout.offset(1).unwrap(), 4);
        assert_eq!(layout.offset(15).unwrap(), 60);
        assert_eq!(layout.width(3).unwrap(), 4);
        assert_eq!(layout.column_type(3).unwrap(), ColumnType::I32);
    }

    #[test]
    fn padded_layout() {
        let s = Schema::uniform(3, ColumnType::I32);
        let layout = RowLayout::padded(&s, 64).unwrap();
        assert_eq!(layout.row_width(), 64);
        assert_eq!(layout.offset(2).unwrap(), 8);
        assert!(RowLayout::padded(&s, 8).is_err());
    }

    #[test]
    fn aligned_layout() {
        let s = Schema::from_pairs(&[("a", ColumnType::I64), ("b", ColumnType::I16)]);
        let layout = RowLayout::aligned(&s, 16);
        assert_eq!(layout.row_width(), 16);
        let exact = Schema::uniform(8, ColumnType::I64);
        assert_eq!(RowLayout::aligned(&exact, 64).row_width(), 64);
    }

    #[test]
    fn field_slices_preserve_request_order() {
        let layout = RowLayout::packed(&paper_schema());
        let fs = layout.fields(&[9, 2, 4]).unwrap();
        assert_eq!(fs[0].offset, 36);
        assert_eq!(fs[1].offset, 8);
        assert_eq!(fs[2].offset, 16);
        assert_eq!(fs[0].column, 9);
        assert_eq!(layout.group_width(&[9, 2, 4]).unwrap(), 12);
    }

    #[test]
    fn range_and_bounds() {
        let layout = RowLayout::packed(&paper_schema());
        assert_eq!(layout.range(1).unwrap(), 4..8);
        assert!(layout.offset(16).is_err());
        assert!(layout.field(16).is_err());
    }

    #[test]
    fn mixed_width_layout() {
        let s = Schema::from_pairs(&[
            ("key", ColumnType::I64),
            ("flag", ColumnType::FixedStr(1)),
            ("qty", ColumnType::F64),
        ]);
        let layout = RowLayout::packed(&s);
        assert_eq!(layout.offset(0).unwrap(), 0);
        assert_eq!(layout.offset(1).unwrap(), 8);
        assert_eq!(layout.offset(2).unwrap(), 9);
        assert_eq!(layout.row_width(), 17);
    }
}
