//! Scalar values and their byte-level encoding.
//!
//! All columns are fixed width and little-endian encoded. The encode/decode
//! helpers here are the single point of truth used by the row stores, the RM
//! packer, the codecs, and the SQL executor, so a round-trip property test on
//! this module covers the byte format everywhere.

use crate::error::{FabricError, Result};
use crate::schema::ColumnType;
use std::cmp::Ordering;
use std::fmt;

/// Days since 1970-01-01 for a proleptic-Gregorian `(year, month, day)`
/// (Howard Hinnant's algorithm; valid far beyond the TPC-H date range).
pub fn days_from_civil(y: i64, m: u32, d: u32) -> u32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64;
    let mp = ((m + 9) % 12) as u64;
    let doy = (153 * mp + 2) / 5 + (d as u64 - 1);
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    (era * 146_097 + doe as i64 - 719_468) as u32
}

/// Total little-endian array read: copies up to `N` bytes from `bytes`,
/// zero-padding a short slice instead of panicking. Callers pass slices
/// whose width was already validated (`Geometry::validate`,
/// `query::analyze`); zero-padding keeps every decoder total anyway, per
/// the repo's no-panic rule for core-crate library code (`fabric-lint`).
#[inline]
pub fn le_array<const N: usize>(bytes: &[u8]) -> [u8; N] {
    let mut out = [0u8; N];
    let n = bytes.len().min(N);
    out[..n].copy_from_slice(&bytes[..n]);
    out
}

/// A scalar runtime value.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Value {
    I8(i8),
    I16(i16),
    I32(i32),
    I64(i64),
    F32(f32),
    F64(f64),
    /// Days since the Unix epoch.
    Date(u32),
    /// Fixed-capacity string; stored zero padded, compared byte-wise.
    Str(String),
}

impl Value {
    /// The column type this value naturally encodes to.
    ///
    /// Strings report their current byte length; encoding against a wider
    /// `FixedStr` pads with zero bytes.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Value::I8(_) => ColumnType::I8,
            Value::I16(_) => ColumnType::I16,
            Value::I32(_) => ColumnType::I32,
            Value::I64(_) => ColumnType::I64,
            Value::F32(_) => ColumnType::F32,
            Value::F64(_) => ColumnType::F64,
            Value::Date(_) => ColumnType::Date,
            Value::Str(s) => ColumnType::FixedStr(s.len()),
        }
    }

    /// Encode into `out`, which must be exactly `ty.width()` bytes.
    pub fn encode_into(&self, ty: ColumnType, out: &mut [u8]) -> Result<()> {
        debug_assert_eq!(out.len(), ty.width());
        match (self, ty) {
            (Value::I8(v), ColumnType::I8) => out.copy_from_slice(&v.to_le_bytes()),
            (Value::I16(v), ColumnType::I16) => out.copy_from_slice(&v.to_le_bytes()),
            (Value::I32(v), ColumnType::I32) => out.copy_from_slice(&v.to_le_bytes()),
            (Value::I64(v), ColumnType::I64) => out.copy_from_slice(&v.to_le_bytes()),
            (Value::F32(v), ColumnType::F32) => out.copy_from_slice(&v.to_le_bytes()),
            (Value::F64(v), ColumnType::F64) => out.copy_from_slice(&v.to_le_bytes()),
            (Value::Date(v), ColumnType::Date) => out.copy_from_slice(&v.to_le_bytes()),
            (Value::Str(s), ColumnType::FixedStr(n)) => {
                if s.len() > n {
                    return Err(FabricError::TypeMismatch {
                        expected: format!("char({n})"),
                        found: format!("string of length {}", s.len()),
                    });
                }
                out[..s.len()].copy_from_slice(s.as_bytes());
                out[s.len()..].fill(0);
            }
            (v, t) => {
                return Err(FabricError::TypeMismatch {
                    expected: t.name(),
                    found: v.column_type().name(),
                })
            }
        }
        Ok(())
    }

    /// Decode a value of type `ty` from `bytes` (must be `ty.width()` long).
    pub fn decode(ty: ColumnType, bytes: &[u8]) -> Value {
        debug_assert_eq!(bytes.len(), ty.width());
        match ty {
            ColumnType::I8 => Value::I8(i8::from_le_bytes(le_array(bytes))),
            ColumnType::I16 => Value::I16(i16::from_le_bytes(le_array(bytes))),
            ColumnType::I32 => Value::I32(i32::from_le_bytes(le_array(bytes))),
            ColumnType::I64 => Value::I64(i64::from_le_bytes(le_array(bytes))),
            ColumnType::F32 => Value::F32(f32::from_le_bytes(le_array(bytes))),
            ColumnType::F64 => Value::F64(f64::from_le_bytes(le_array(bytes))),
            ColumnType::Date => Value::Date(u32::from_le_bytes(le_array(bytes))),
            ColumnType::FixedStr(_) => {
                let end = bytes.iter().position(|&b| b == 0).unwrap_or(bytes.len());
                Value::Str(String::from_utf8_lossy(&bytes[..end]).into_owned())
            }
        }
    }

    /// Numeric view as `f64`, for aggregates. Strings are an error.
    pub fn as_f64(&self) -> Result<f64> {
        Ok(match self {
            Value::I8(v) => *v as f64,
            Value::I16(v) => *v as f64,
            Value::I32(v) => *v as f64,
            Value::I64(v) => *v as f64,
            Value::F32(v) => *v as f64,
            Value::F64(v) => *v,
            Value::Date(v) => *v as f64,
            Value::Str(_) => {
                return Err(FabricError::TypeMismatch {
                    expected: "numeric".into(),
                    found: "string".into(),
                })
            }
        })
    }

    /// Integer view as `i64`, for keys and dates.
    pub fn as_i64(&self) -> Result<i64> {
        Ok(match self {
            Value::I8(v) => *v as i64,
            Value::I16(v) => *v as i64,
            Value::I32(v) => *v as i64,
            Value::I64(v) => *v,
            Value::Date(v) => *v as i64,
            Value::F32(v) => *v as i64,
            Value::F64(v) => *v as i64,
            Value::Str(_) => {
                return Err(FabricError::TypeMismatch {
                    expected: "integer".into(),
                    found: "string".into(),
                })
            }
        })
    }

    /// Total comparison used by predicates: numerics compare numerically
    /// (integers exactly, mixed via `f64`), strings compare byte-wise.
    pub fn compare(&self, other: &Value) -> Result<Ordering> {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => Ok(a.as_bytes().cmp(b.as_bytes())),
            (Value::Str(_), _) | (_, Value::Str(_)) => Err(FabricError::TypeMismatch {
                expected: "comparable types".into(),
                found: "string vs numeric".into(),
            }),
            (a, b) => {
                // Exact integer compare when both sides are integral.
                if let (Ok(x), Ok(y)) = (a.try_exact_i64(), b.try_exact_i64()) {
                    return Ok(x.cmp(&y));
                }
                let x = a.as_f64()?;
                let y = b.as_f64()?;
                Ok(x.partial_cmp(&y).unwrap_or(Ordering::Equal))
            }
        }
    }

    fn try_exact_i64(&self) -> Result<i64> {
        match self {
            Value::I8(_) | Value::I16(_) | Value::I32(_) | Value::I64(_) | Value::Date(_) => {
                self.as_i64()
            }
            _ => Err(FabricError::Internal("not integral".into())),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I8(v) => write!(f, "{v}"),
            Value::I16(v) => write!(f, "{v}"),
            Value::I32(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F32(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Date(v) => write!(f, "date#{v}"),
            Value::Str(v) => write!(f, "'{v}'"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn roundtrip_fixed_width() {
        let cases = vec![
            (Value::I8(-5), ColumnType::I8),
            (Value::I16(-300), ColumnType::I16),
            (Value::I32(123_456), ColumnType::I32),
            (Value::I64(-9_876_543_210), ColumnType::I64),
            (Value::F32(1.5), ColumnType::F32),
            (Value::F64(-2.25), ColumnType::F64),
            (Value::Date(19_000), ColumnType::Date),
        ];
        for (v, ty) in cases {
            let mut buf = vec![0u8; ty.width()];
            v.encode_into(ty, &mut buf).unwrap();
            assert_eq!(Value::decode(ty, &buf), v);
        }
    }

    #[test]
    fn string_pads_and_truncates_trailing_zeros() {
        let mut buf = vec![0xAAu8; 8];
        Value::Str("abc".into())
            .encode_into(ColumnType::FixedStr(8), &mut buf)
            .unwrap();
        assert_eq!(&buf[..3], b"abc");
        assert_eq!(&buf[3..], &[0, 0, 0, 0, 0]);
        assert_eq!(
            Value::decode(ColumnType::FixedStr(8), &buf),
            Value::Str("abc".into())
        );
    }

    #[test]
    fn string_too_long_is_error() {
        let mut buf = vec![0u8; 2];
        assert!(Value::Str("abc".into())
            .encode_into(ColumnType::FixedStr(2), &mut buf)
            .is_err());
    }

    #[test]
    fn cross_type_encode_is_error() {
        let mut buf = vec![0u8; 4];
        assert!(Value::I64(1)
            .encode_into(ColumnType::I32, &mut buf)
            .is_err());
    }

    #[test]
    fn compare_mixed_numeric() {
        assert_eq!(
            Value::I32(3).compare(&Value::F64(3.5)).unwrap(),
            Ordering::Less
        );
        assert_eq!(
            Value::I64(7).compare(&Value::I8(7)).unwrap(),
            Ordering::Equal
        );
        assert!(Value::Str("a".into()).compare(&Value::I8(0)).is_err());
    }

    #[test]
    fn exact_i64_comparison_beyond_f53() {
        // Would be equal under f64 rounding; must differ under exact compare.
        let a = Value::I64(9_007_199_254_740_993);
        let b = Value::I64(9_007_199_254_740_992);
        assert_eq!(a.compare(&b).unwrap(), Ordering::Greater);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn prop_i64_roundtrip(v in any::<i64>()) {
            let mut buf = [0u8; 8];
            Value::I64(v).encode_into(ColumnType::I64, &mut buf).unwrap();
            prop_assert_eq!(Value::decode(ColumnType::I64, &buf), Value::I64(v));
        }

        #[test]
        fn prop_f64_roundtrip(v in any::<f64>().prop_filter("finite", |x| x.is_finite())) {
            let mut buf = [0u8; 8];
            Value::F64(v).encode_into(ColumnType::F64, &mut buf).unwrap();
            prop_assert_eq!(Value::decode(ColumnType::F64, &buf), Value::F64(v));
        }

        #[test]
        fn prop_str_roundtrip(s in "[a-zA-Z0-9 ]{0,16}") {
            let mut buf = [0u8; 16];
            Value::Str(s.clone()).encode_into(ColumnType::FixedStr(16), &mut buf).unwrap();
            prop_assert_eq!(Value::decode(ColumnType::FixedStr(16), &buf), Value::Str(s));
        }

        #[test]
        fn prop_compare_consistent_with_i64(a in any::<i32>(), b in any::<i32>()) {
            let ord = Value::I32(a).compare(&Value::I32(b)).unwrap();
            prop_assert_eq!(ord, a.cmp(&b));
        }
    }
}
