//! Deterministic pseudo-random number generation, in-repo.
//!
//! The workload generators and benchmarks need reproducible randomness but
//! must build with **zero external crates** (the tier-1 gate runs offline).
//! This module provides a small, well-known generator pair:
//!
//! * [`SplitMix64`] — the 64-bit finalizer-based stream from Steele et al.,
//!   used here to expand a single `u64` seed into the state of the main
//!   generator (the same bootstrap `rand`'s `SeedableRng::seed_from_u64`
//!   performs);
//! * [`DetRng`] — xoshiro256**, Blackman & Vigna's general-purpose generator:
//!   256 bits of state, period 2^256 − 1, and excellent equidistribution —
//!   far more than the synthetic data generators here require.
//!
//! The API mirrors the subset of `rand` the workspace used
//! (`seed_from_u64`, `gen_range`, `gen_bool`), so call sites read
//! identically; only the import changes.

/// SplitMix64: a tiny splittable generator used to seed [`DetRng`].
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output (Steele, Lea & Flood's finalizer).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the workspace's deterministic generator.
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Seed the full 256-bit state from one `u64` via [`SplitMix64`]
    /// (the canonical bootstrap recommended by the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        DetRng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform sample from a half-open or inclusive range.
    ///
    /// Panics if the range is empty, matching `rand`'s contract.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Uniform in `[0, bound)` via Lemire's multiply-shift reduction.
    /// The modulo bias is below 2^-64 for every bound the workspace uses.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Ranges [`DetRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut DetRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        // The widen-to-i128 casts are trivial for some instantiations of
        // the macro (u64, i64) but required for the rest.
        #[allow(trivial_numeric_casts)]
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut DetRng) -> $t {
                assert!(self.start < self.end, "gen_range over an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        #[allow(trivial_numeric_casts)]
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut DetRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range over an empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-domain u64/i64 inclusive range: every output is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut DetRng) -> f64 {
        assert!(self.start < self.end, "gen_range over an empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample(self, rng: &mut DetRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range over an empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // Reference outputs for seed 1234567 (from the published C code).
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), first);
        assert_eq!(sm2.next_u64(), second);
        // Distinct seeds diverge immediately.
        assert_ne!(SplitMix64::new(7).next_u64(), SplitMix64::new(8).next_u64());
    }

    #[test]
    fn det_rng_is_deterministic_and_seed_sensitive() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = DetRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50..=50i64);
            assert!((-50..=50).contains(&v));
            let v = rng.gen_range(0..7usize);
            assert!(v < 7);
            let v = rng.gen_range(900.0..=10_000.0f64);
            assert!((900.0..=10_000.0).contains(&v));
            let v = rng.gen_range(-1_000_000..1_000_000i64);
            assert!((-1_000_000..1_000_000).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = DetRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        // Inclusive ranges reach both endpoints.
        let mut lo_hit = false;
        let mut hi_hit = false;
        for _ in 0..1000 {
            match rng.gen_range(0..=3u32) {
                0 => lo_hit = true,
                3 => hi_hit = true,
                _ => {}
            }
        }
        assert!(lo_hit && hi_hit);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = DetRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0) || true));
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = DetRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
