//! Scalar expressions over decoded tuples, plus value-level aggregate
//! accumulators.
//!
//! Every engine in the workspace (the Volcano row store, the vectorized
//! column store, the RM consumer code, and the SQL executor) evaluates the
//! same [`Expr`] tree, so results are comparable bit for bit. [`Expr::ops`]
//! reports the number of arithmetic operations so engines can charge CPU
//! cycles consistently.

use crate::error::{FabricError, Result};
use crate::geometry::AggFunc;
use crate::value::Value;
use std::fmt;

/// A scalar expression over a positional tuple.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Expr {
    /// Value of the tuple's `i`-th slot.
    Col(usize),
    /// A literal.
    Const(Value),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Div(Box<Expr>, Box<Expr>),
}

#[allow(clippy::should_implement_trait)] // `add`/`mul` etc. are builders, not operators
impl Expr {
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    pub fn lit(v: Value) -> Expr {
        Expr::Const(v)
    }

    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }

    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Sub(Box::new(a), Box::new(b))
    }

    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }

    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::Div(Box::new(a), Box::new(b))
    }

    /// Evaluate to `f64` over a positional tuple.
    pub fn eval_f64(&self, tuple: &[Value]) -> Result<f64> {
        Ok(match self {
            Expr::Col(i) => tuple
                .get(*i)
                .ok_or(FabricError::ColumnIndexOutOfRange {
                    index: *i,
                    len: tuple.len(),
                })?
                .as_f64()?,
            Expr::Const(v) => v.as_f64()?,
            Expr::Add(a, b) => a.eval_f64(tuple)? + b.eval_f64(tuple)?,
            Expr::Sub(a, b) => a.eval_f64(tuple)? - b.eval_f64(tuple)?,
            Expr::Mul(a, b) => a.eval_f64(tuple)? * b.eval_f64(tuple)?,
            Expr::Div(a, b) => {
                let d = b.eval_f64(tuple)?;
                if d == 0.0 {
                    return Err(FabricError::Internal("division by zero".into()));
                }
                a.eval_f64(tuple)? / d
            }
        })
    }

    /// Evaluate to a [`Value`] (column refs keep their type; arithmetic
    /// promotes to `F64`).
    pub fn eval(&self, tuple: &[Value]) -> Result<Value> {
        match self {
            Expr::Col(i) => tuple
                .get(*i)
                .cloned()
                .ok_or(FabricError::ColumnIndexOutOfRange {
                    index: *i,
                    len: tuple.len(),
                }),
            Expr::Const(v) => Ok(v.clone()),
            _ => Ok(Value::F64(self.eval_f64(tuple)?)),
        }
    }

    /// Number of arithmetic operations in the tree (for CPU-cost charging).
    pub fn ops(&self) -> u64 {
        match self {
            Expr::Col(_) | Expr::Const(_) => 0,
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                1 + a.ops() + b.ops()
            }
        }
    }

    /// Append the distinct column slots referenced, in first-seen order.
    pub fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Col(i) => {
                if !out.contains(i) {
                    out.push(*i);
                }
            }
            Expr::Const(_) => {}
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(i) => write!(f, "${i}"),
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
        }
    }
}

/// A value-level aggregate accumulator (software engines; the device-side
/// equivalent lives in `relmem::aggregate`).
#[derive(Debug, Clone)]
pub struct ValueAgg {
    func: AggFunc,
    count: u64,
    sum: f64,
    min: Option<Value>,
    max: Option<Value>,
}

impl ValueAgg {
    pub fn new(func: AggFunc) -> Self {
        ValueAgg {
            func,
            count: 0,
            sum: 0.0,
            min: None,
            max: None,
        }
    }

    /// Feed one value (already the result of the aggregate's expression).
    pub fn update(&mut self, v: &Value) -> Result<()> {
        self.count += 1;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => self.sum += v.as_f64()?,
            AggFunc::Min => {
                let better = match &self.min {
                    None => true,
                    Some(cur) => v.compare(cur)? == std::cmp::Ordering::Less,
                };
                if better {
                    self.min = Some(v.clone());
                }
            }
            AggFunc::Max => {
                let better = match &self.max {
                    None => true,
                    Some(cur) => v.compare(cur)? == std::cmp::Ordering::Greater,
                };
                if better {
                    self.max = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    /// Fast-path feed for numeric aggregates.
    pub fn update_f64(&mut self, v: f64) {
        self.count += 1;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => self.sum += v,
            AggFunc::Min => {
                let cur = self.min.as_ref().and_then(|m| m.as_f64().ok());
                if cur.is_none_or(|m| v < m) {
                    self.min = Some(Value::F64(v));
                }
            }
            AggFunc::Max => {
                let cur = self.max.as_ref().and_then(|m| m.as_f64().ok());
                if cur.is_none_or(|m| v > m) {
                    self.max = Some(Value::F64(v));
                }
            }
        }
    }

    /// Fold another accumulator of the *same* aggregate into this one
    /// (morsel-driven execution merges per-morsel partials at a barrier).
    /// Partials must be merged in a fixed order — floating-point sums are
    /// not associative, so the merge order is part of the result contract.
    pub fn merge(&mut self, other: &ValueAgg) -> Result<()> {
        if self.func != other.func {
            return Err(FabricError::Internal(
                "merging mismatched aggregate accumulators".into(),
            ));
        }
        self.count += other.count;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => self.sum += other.sum,
            AggFunc::Min => {
                if let Some(v) = &other.min {
                    let better = match &self.min {
                        None => true,
                        Some(cur) => v.compare(cur)? == std::cmp::Ordering::Less,
                    };
                    if better {
                        self.min = Some(v.clone());
                    }
                }
            }
            AggFunc::Max => {
                if let Some(v) = &other.max {
                    let better = match &self.max {
                        None => true,
                        Some(cur) => v.compare(cur)? == std::cmp::Ordering::Greater,
                    };
                    if better {
                        self.max = Some(v.clone());
                    }
                }
            }
        }
        Ok(())
    }

    pub fn finish(&self) -> Result<Value> {
        match self.func {
            AggFunc::Count => Ok(Value::I64(self.count as i64)),
            AggFunc::Sum => Ok(Value::F64(self.sum)),
            AggFunc::Avg => {
                if self.count == 0 {
                    Err(FabricError::Internal("AVG over zero rows".into()))
                } else {
                    Ok(Value::F64(self.sum / self.count as f64))
                }
            }
            AggFunc::Min => self
                .min
                .clone()
                .ok_or_else(|| FabricError::Internal("MIN over zero rows".into())),
            AggFunc::Max => self
                .max
                .clone()
                .ok_or_else(|| FabricError::Internal("MAX over zero rows".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple() -> Vec<Value> {
        vec![Value::I32(10), Value::F64(2.5), Value::I64(-4)]
    }

    #[test]
    fn eval_arithmetic() {
        // ($0 + $2) * $1 = (10 - 4) * 2.5 = 15
        let e = Expr::mul(Expr::add(Expr::col(0), Expr::col(2)), Expr::col(1));
        assert_eq!(e.eval_f64(&tuple()).unwrap(), 15.0);
        assert_eq!(e.eval(&tuple()).unwrap(), Value::F64(15.0));
        assert_eq!(e.ops(), 2);
    }

    #[test]
    fn col_eval_preserves_type() {
        assert_eq!(Expr::col(0).eval(&tuple()).unwrap(), Value::I32(10));
        assert_eq!(Expr::col(2).eval(&tuple()).unwrap(), Value::I64(-4));
    }

    #[test]
    fn division_by_zero_is_error() {
        let e = Expr::div(Expr::col(0), Expr::lit(Value::F64(0.0)));
        assert!(e.eval_f64(&tuple()).is_err());
    }

    #[test]
    fn out_of_range_column_is_error() {
        assert!(Expr::col(9).eval_f64(&tuple()).is_err());
    }

    #[test]
    fn collect_columns_dedups() {
        let e = Expr::mul(Expr::add(Expr::col(1), Expr::col(3)), Expr::col(1));
        let mut cols = Vec::new();
        e.collect_columns(&mut cols);
        assert_eq!(cols, vec![1, 3]);
    }

    #[test]
    fn display_round() {
        let e = Expr::mul(
            Expr::col(0),
            Expr::sub(Expr::lit(Value::F64(1.0)), Expr::col(1)),
        );
        assert_eq!(e.to_string(), "($0 * (1 - $1))");
    }

    #[test]
    fn value_agg_all_functions() {
        let mut count = ValueAgg::new(AggFunc::Count);
        let mut sum = ValueAgg::new(AggFunc::Sum);
        let mut min = ValueAgg::new(AggFunc::Min);
        let mut max = ValueAgg::new(AggFunc::Max);
        let mut avg = ValueAgg::new(AggFunc::Avg);
        for v in [3.0, -1.0, 7.0, 1.0] {
            for a in [&mut count, &mut sum, &mut min, &mut max, &mut avg] {
                a.update(&Value::F64(v)).unwrap();
            }
        }
        assert_eq!(count.finish().unwrap(), Value::I64(4));
        assert_eq!(sum.finish().unwrap(), Value::F64(10.0));
        assert_eq!(min.finish().unwrap(), Value::F64(-1.0));
        assert_eq!(max.finish().unwrap(), Value::F64(7.0));
        assert_eq!(avg.finish().unwrap(), Value::F64(2.5));
    }

    #[test]
    fn value_agg_update_f64_matches_update() {
        let mut a = ValueAgg::new(AggFunc::Min);
        let mut b = ValueAgg::new(AggFunc::Min);
        for v in [5.0, 2.0, 9.0] {
            a.update(&Value::F64(v)).unwrap();
            b.update_f64(v);
        }
        assert_eq!(a.finish().unwrap(), b.finish().unwrap());
    }

    #[test]
    fn value_agg_merge_folds_partials() {
        for func in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ] {
            let mut whole = ValueAgg::new(func);
            let mut lo = ValueAgg::new(func);
            let mut hi = ValueAgg::new(func);
            for v in [4.0, -2.0, 8.0, 1.0] {
                whole.update(&Value::F64(v)).unwrap();
            }
            lo.update(&Value::F64(4.0)).unwrap();
            lo.update(&Value::F64(-2.0)).unwrap();
            hi.update(&Value::F64(8.0)).unwrap();
            hi.update(&Value::F64(1.0)).unwrap();
            lo.merge(&hi).unwrap();
            assert_eq!(lo.finish().unwrap(), whole.finish().unwrap(), "{func:?}");
            // Merging an empty partial is a no-op.
            lo.merge(&ValueAgg::new(func)).unwrap();
            assert_eq!(lo.finish().unwrap(), whole.finish().unwrap());
        }
        let mut a = ValueAgg::new(AggFunc::Sum);
        assert!(a.merge(&ValueAgg::new(AggFunc::Min)).is_err());
    }

    #[test]
    fn empty_aggregates() {
        assert_eq!(
            ValueAgg::new(AggFunc::Count).finish().unwrap(),
            Value::I64(0)
        );
        assert_eq!(
            ValueAgg::new(AggFunc::Sum).finish().unwrap(),
            Value::F64(0.0)
        );
        assert!(ValueAgg::new(AggFunc::Min).finish().is_err());
        assert!(ValueAgg::new(AggFunc::Avg).finish().is_err());
    }
}
