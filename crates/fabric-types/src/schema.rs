//! Relational schemas with fixed-width columns.
//!
//! The Relational Fabric operates on fixed-width row layouts (the hardware
//! gathers at byte offsets known per geometry, cf. paper §IV-A: "fine-grained
//! information on the exact byte-wise location of data items"). Variable-width
//! data is represented as fixed-capacity strings, the same choice the authors'
//! prototype makes (`char text_fld[12]` in paper Fig. 3).

use crate::error::{FabricError, Result};

/// Index of a column within a [`Schema`].
pub type ColumnId = usize;

/// Physical type of a column. All types are fixed width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ColumnType {
    /// Signed 8-bit integer.
    I8,
    /// Signed 16-bit integer.
    I16,
    /// Signed 32-bit integer.
    I32,
    /// Signed 64-bit integer.
    I64,
    /// IEEE-754 single precision.
    F32,
    /// IEEE-754 double precision.
    F64,
    /// Days since 1970-01-01, stored as `u32` (TPC-H dates fit easily).
    Date,
    /// Fixed-capacity ASCII string, zero padded.
    FixedStr(usize),
}

impl ColumnType {
    /// Width of the column in bytes.
    pub fn width(&self) -> usize {
        match self {
            ColumnType::I8 => 1,
            ColumnType::I16 => 2,
            ColumnType::I32 | ColumnType::F32 | ColumnType::Date => 4,
            ColumnType::I64 | ColumnType::F64 => 8,
            ColumnType::FixedStr(n) => *n,
        }
    }

    /// Whether the type is numeric (orderable by numeric comparison).
    pub fn is_numeric(&self) -> bool {
        !matches!(self, ColumnType::FixedStr(_))
    }

    /// Human-readable name, used in error messages and EXPLAIN output.
    pub fn name(&self) -> String {
        match self {
            ColumnType::I8 => "i8".into(),
            ColumnType::I16 => "i16".into(),
            ColumnType::I32 => "i32".into(),
            ColumnType::I64 => "i64".into(),
            ColumnType::F32 => "f32".into(),
            ColumnType::F64 => "f64".into(),
            ColumnType::Date => "date".into(),
            ColumnType::FixedStr(n) => format!("char({n})"),
        }
    }
}

/// A single column definition: name plus physical type.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ColumnDef {
    pub name: String,
    pub ty: ColumnType,
}

impl ColumnDef {
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered list of columns.
///
/// A schema is deliberately minimal: the physical placement of columns in a
/// row is the job of [`crate::layout::RowLayout`], which is derived from the
/// schema (plus optional padding).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Build a schema from column definitions.
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        Schema { columns }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, ColumnType)]) -> Self {
        Schema {
            columns: pairs.iter().map(|(n, t)| ColumnDef::new(*n, *t)).collect(),
        }
    }

    /// A synthetic schema of `n` columns named `c0..c{n-1}`, all of type `ty`.
    ///
    /// The paper's microbenchmarks (Figs. 5, 6) use 16 four-byte columns in a
    /// 64-byte row; `Schema::uniform(16, ColumnType::I32)` reproduces that.
    pub fn uniform(n: usize, ty: ColumnType) -> Self {
        Schema {
            columns: (0..n)
                .map(|i| ColumnDef::new(format!("c{i}"), ty))
                .collect(),
        }
    }

    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Look a column up by name.
    pub fn column_id(&self, name: &str) -> Result<ColumnId> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| FabricError::UnknownColumn(name.to_string()))
    }

    /// Column definition by index.
    pub fn column(&self, id: ColumnId) -> Result<&ColumnDef> {
        self.columns
            .get(id)
            .ok_or(FabricError::ColumnIndexOutOfRange {
                index: id,
                len: self.columns.len(),
            })
    }

    /// Sum of raw column widths (no padding).
    pub fn unpadded_width(&self) -> usize {
        self.columns.iter().map(|c| c.ty.width()).sum()
    }

    /// Iterator over `(id, def)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ColumnId, &ColumnDef)> {
        self.columns.iter().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(ColumnType::I8.width(), 1);
        assert_eq!(ColumnType::I16.width(), 2);
        assert_eq!(ColumnType::I32.width(), 4);
        assert_eq!(ColumnType::I64.width(), 8);
        assert_eq!(ColumnType::F32.width(), 4);
        assert_eq!(ColumnType::F64.width(), 8);
        assert_eq!(ColumnType::Date.width(), 4);
        assert_eq!(ColumnType::FixedStr(12).width(), 12);
    }

    #[test]
    fn uniform_schema_matches_paper_microbenchmark() {
        let s = Schema::uniform(16, ColumnType::I32);
        assert_eq!(s.len(), 16);
        assert_eq!(s.unpadded_width(), 64);
        assert_eq!(s.column_id("c0").unwrap(), 0);
        assert_eq!(s.column_id("c15").unwrap(), 15);
    }

    #[test]
    fn unknown_column_is_error() {
        let s = Schema::uniform(4, ColumnType::I64);
        assert!(matches!(
            s.column_id("nope"),
            Err(FabricError::UnknownColumn(_))
        ));
        assert!(matches!(
            s.column(9),
            Err(FabricError::ColumnIndexOutOfRange { index: 9, len: 4 })
        ));
    }

    #[test]
    fn paper_fig3_row_struct() {
        // struct row { long key; char[12]; char[16]; long x4 } = 68 bytes raw.
        let s = Schema::from_pairs(&[
            ("key", ColumnType::I64),
            ("text_fld1", ColumnType::FixedStr(12)),
            ("text_fld2", ColumnType::FixedStr(16)),
            ("num_fld1", ColumnType::I64),
            ("num_fld2", ColumnType::I64),
            ("num_fld3", ColumnType::I64),
            ("num_fld4", ColumnType::I64),
        ]);
        assert_eq!(s.unpadded_width(), 8 + 12 + 16 + 8 * 4);
    }
}
