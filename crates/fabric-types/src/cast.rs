//! Narrowing-conversion helpers for hot-path modules.
//!
//! The fabric-lint rule `narrowing-cast` bans bare `as u8`/`as u16`/… in
//! hot-path modules (`relmem::packer`, `fabric_sim::cache`, all of
//! `compress`): a silent `as` truncation there corrupts simulated bytes
//! without a trace in the cycle accounting. Call sites instead pick one of
//! these helpers and thereby document *which* behaviour they mean:
//!
//! * [`low_u8`] / [`low_u16`] / [`low_u32`] — **masked** truncation. The
//!   caller wants exactly the low bits (varint chunks, LZ token fields
//!   bounded by construction). Semantically identical to `as`, but named.
//! * [`try_u8`] / [`try_u16`] / [`try_u32`] — **checked** conversion.
//!   The value must fit; overflow surfaces as [`FabricError::Codec`]
//!   instead of wrapping silently.
//!
//! All helpers are `#[inline]` and compile to the same single instruction
//! as the cast they replace.

use crate::error::{FabricError, Result};

/// The low 8 bits of `v`, as an explicit masked truncation.
#[inline]
pub fn low_u8(v: u64) -> u8 {
    (v & 0xFF) as u8
}

/// The low 16 bits of `v`, as an explicit masked truncation.
#[inline]
pub fn low_u16(v: u64) -> u16 {
    (v & 0xFFFF) as u16
}

/// The low 32 bits of `v`, as an explicit masked truncation.
#[inline]
pub fn low_u32(v: u64) -> u32 {
    (v & 0xFFFF_FFFF) as u32
}

/// Checked `u64 → u8`; errors with the caller-supplied context on overflow.
#[inline]
pub fn try_u8(v: u64, what: &str) -> Result<u8> {
    u8::try_from(v).map_err(|_| FabricError::Codec(format!("{what}: {v} does not fit in u8")))
}

/// Checked `u64 → u16`; errors with the caller-supplied context on overflow.
#[inline]
pub fn try_u16(v: u64, what: &str) -> Result<u16> {
    u16::try_from(v).map_err(|_| FabricError::Codec(format!("{what}: {v} does not fit in u16")))
}

/// Checked `u64 → u32`; errors with the caller-supplied context on overflow.
#[inline]
pub fn try_u32(v: u64, what: &str) -> Result<u32> {
    u32::try_from(v).map_err(|_| FabricError::Codec(format!("{what}: {v} does not fit in u32")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masked_truncation_keeps_low_bits() {
        assert_eq!(low_u8(0x1FF), 0xFF);
        assert_eq!(low_u8(0x7F), 0x7F);
        assert_eq!(low_u16(0x1_FFFF), 0xFFFF);
        assert_eq!(low_u16(4096), 4096);
        assert_eq!(low_u32(u64::MAX), 0xFFFF_FFFF);
    }

    #[test]
    fn checked_conversion_round_trips_in_range() {
        assert_eq!(try_u8(255, "x").unwrap(), 255);
        assert_eq!(try_u16(65_535, "x").unwrap(), 65_535);
        assert_eq!(try_u32(1 << 20, "x").unwrap(), 1 << 20);
    }

    #[test]
    fn checked_conversion_errors_name_the_site() {
        let err = try_u8(256, "lz match length").unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("lz match length"), "{msg}");
        assert!(try_u16(1 << 16, "off").is_err());
        assert!(try_u32(1 << 32, "len").is_err());
    }
}
