//! Conjunctive predicates evaluated directly over raw row bytes.
//!
//! The Relational Fabric pushes *selection* into the hardware (§IV-B): the
//! device evaluates simple comparisons against constants while gathering.
//! [`ColumnPredicate::eval_raw`] is exactly that comparator — it takes a raw
//! row image and decodes only the predicate's field. The same code path is
//! used by the software engines so that every engine agrees on semantics.

use crate::error::Result;
use crate::geometry::FieldSlice;
use crate::value::Value;
use std::cmp::Ordering;
use std::fmt;

/// Comparison operator for a column-vs-constant predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Does `ord` (of `lhs.cmp(rhs)`) satisfy this operator?
    pub fn matches(&self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// The operator with operand sides swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A single `column <op> constant` comparison.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ColumnPredicate {
    /// Where the column lives inside a raw row.
    pub field: FieldSlice,
    pub op: CmpOp,
    pub value: Value,
}

impl ColumnPredicate {
    pub fn new(field: FieldSlice, op: CmpOp, value: Value) -> Self {
        ColumnPredicate { field, op, value }
    }

    /// Evaluate against the raw bytes of one row.
    pub fn eval_raw(&self, row: &[u8]) -> Result<bool> {
        let bytes = &row[self.field.offset..self.field.offset + self.field.width()];
        let v = Value::decode(self.field.ty, bytes);
        Ok(self.op.matches(v.compare(&self.value)?))
    }

    /// Evaluate against an already-decoded value.
    pub fn eval_value(&self, v: &Value) -> Result<bool> {
        Ok(self.op.matches(v.compare(&self.value)?))
    }
}

impl fmt::Display for ColumnPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "col{} {} {}", self.field.column, self.op, self.value)
    }
}

/// A conjunction (`AND`) of column predicates. Empty means "always true".
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Predicate {
    conjuncts: Vec<ColumnPredicate>,
}

impl Predicate {
    /// The always-true predicate.
    pub fn always_true() -> Self {
        Predicate {
            conjuncts: Vec::new(),
        }
    }

    pub fn new(conjuncts: Vec<ColumnPredicate>) -> Self {
        Predicate { conjuncts }
    }

    pub fn and(mut self, p: ColumnPredicate) -> Self {
        self.conjuncts.push(p);
        self
    }

    pub fn conjuncts(&self) -> &[ColumnPredicate] {
        &self.conjuncts
    }

    pub fn is_trivial(&self) -> bool {
        self.conjuncts.is_empty()
    }

    /// Evaluate the whole conjunction against one raw row.
    ///
    /// Short-circuits on the first failing conjunct, like both the software
    /// engines and the hardware comparator chain would.
    pub fn eval_raw(&self, row: &[u8]) -> Result<bool> {
        for c in &self.conjuncts {
            if !c.eval_raw(row)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// The distinct columns this predicate touches, in first-seen order.
    pub fn columns(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        for c in &self.conjuncts {
            if !cols.contains(&c.field.column) {
                cols.push(c.field.column);
            }
        }
        cols
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conjuncts.is_empty() {
            return f.write_str("true");
        }
        for (i, c) in self.conjuncts.iter().enumerate() {
            if i > 0 {
                f.write_str(" AND ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn field(offset: usize, ty: ColumnType) -> FieldSlice {
        FieldSlice {
            column: 0,
            offset,
            ty,
        }
    }

    #[test]
    fn cmp_op_matrix() {
        use Ordering::*;
        assert!(CmpOp::Eq.matches(Equal) && !CmpOp::Eq.matches(Less));
        assert!(CmpOp::Ne.matches(Less) && !CmpOp::Ne.matches(Equal));
        assert!(CmpOp::Lt.matches(Less) && !CmpOp::Lt.matches(Equal));
        assert!(CmpOp::Le.matches(Equal) && !CmpOp::Le.matches(Greater));
        assert!(CmpOp::Gt.matches(Greater) && !CmpOp::Gt.matches(Equal));
        assert!(CmpOp::Ge.matches(Equal) && !CmpOp::Ge.matches(Less));
    }

    #[test]
    fn flipped_is_involutive_on_ordering() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.flipped().flipped(), op);
        }
    }

    #[test]
    fn eval_raw_on_row_bytes() {
        // Row: [i32 = 42][i32 = -7]
        let mut row = vec![0u8; 8];
        row[..4].copy_from_slice(&42i32.to_le_bytes());
        row[4..].copy_from_slice(&(-7i32).to_le_bytes());

        let p = ColumnPredicate::new(field(0, ColumnType::I32), CmpOp::Gt, Value::I32(10));
        assert!(p.eval_raw(&row).unwrap());
        let p = ColumnPredicate::new(field(4, ColumnType::I32), CmpOp::Ge, Value::I32(0));
        assert!(!p.eval_raw(&row).unwrap());
    }

    #[test]
    fn conjunction_short_circuits_semantics() {
        let mut row = vec![0u8; 8];
        row[..4].copy_from_slice(&5i32.to_le_bytes());
        row[4..].copy_from_slice(&100i32.to_le_bytes());

        let yes = Predicate::always_true()
            .and(ColumnPredicate::new(
                field(0, ColumnType::I32),
                CmpOp::Eq,
                Value::I32(5),
            ))
            .and(ColumnPredicate::new(
                field(4, ColumnType::I32),
                CmpOp::Lt,
                Value::I32(200),
            ));
        assert!(yes.eval_raw(&row).unwrap());

        let no = Predicate::always_true()
            .and(ColumnPredicate::new(
                field(0, ColumnType::I32),
                CmpOp::Ne,
                Value::I32(5),
            ))
            .and(ColumnPredicate::new(
                field(4, ColumnType::I32),
                CmpOp::Lt,
                Value::I32(200),
            ));
        assert!(!no.eval_raw(&row).unwrap());
    }

    #[test]
    fn trivial_predicate_accepts_everything() {
        assert!(Predicate::always_true().eval_raw(&[]).unwrap());
        assert!(Predicate::always_true().is_trivial());
    }

    #[test]
    fn columns_dedup_in_order() {
        let f0 = FieldSlice {
            column: 3,
            offset: 12,
            ty: ColumnType::I32,
        };
        let f1 = FieldSlice {
            column: 1,
            offset: 4,
            ty: ColumnType::I32,
        };
        let p = Predicate::always_true()
            .and(ColumnPredicate::new(f0, CmpOp::Gt, Value::I32(0)))
            .and(ColumnPredicate::new(f1, CmpOp::Lt, Value::I32(9)))
            .and(ColumnPredicate::new(f0, CmpOp::Lt, Value::I32(100)));
        assert_eq!(p.columns(), vec![3, 1]);
    }

    #[test]
    fn string_predicate() {
        let mut row = vec![0u8; 4];
        row[..1].copy_from_slice(b"R");
        let f = FieldSlice {
            column: 0,
            offset: 0,
            ty: ColumnType::FixedStr(4),
        };
        let p = ColumnPredicate::new(f, CmpOp::Eq, Value::Str("R".into()));
        assert!(p.eval_raw(&row).unwrap());
    }
}
