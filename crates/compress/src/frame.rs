//! Frame-of-reference (FOR) encoding with per-block bit packing.
//!
//! Each block stores its minimum as the reference plus fixed-width
//! bit-packed offsets. Unlike delta encoding, a value can be decoded
//! *without touching its neighbours* — `reference + bits[i]` — which makes
//! FOR the friendliest numeric codec for a Relational Fabric after plain
//! dictionaries: the device reads one block header and one bit-packed slot.

use fabric_types::{cast, FabricError, Result};

/// Default values per block.
pub const DEFAULT_BLOCK: usize = 128;

/// One encoded block.
#[derive(Debug, Clone)]
struct Block {
    reference: i64,
    bit_width: u8,
    /// ceil(n * bit_width / 8) bytes of little-endian bit-packed offsets.
    bits: Vec<u8>,
    n: usize,
}

/// Frame-of-reference-encoded `i64` column.
#[derive(Debug, Clone)]
pub struct ForEncoded {
    block_size: usize,
    blocks: Vec<Block>,
    len: usize,
}

fn bits_needed(max_offset: u64) -> u8 {
    // 0..=64: always fits in a u8.
    cast::low_u8(u64::from(64 - max_offset.leading_zeros()))
}

impl ForEncoded {
    pub fn encode(values: &[i64]) -> Self {
        Self::encode_with_block(values, DEFAULT_BLOCK)
    }

    pub fn encode_with_block(values: &[i64], block_size: usize) -> Self {
        assert!(block_size >= 1);
        let mut blocks = Vec::new();
        for chunk in values.chunks(block_size) {
            let reference = *chunk.iter().min().unwrap();
            let max_offset = chunk
                .iter()
                .map(|&v| (v as i128 - reference as i128) as u64)
                .max()
                .unwrap();
            let bit_width = bits_needed(max_offset);
            let mut bits = vec![0u8; (chunk.len() * bit_width as usize).div_ceil(8)];
            for (i, &v) in chunk.iter().enumerate() {
                let offset = (v as i128 - reference as i128) as u64;
                write_bits(&mut bits, i * bit_width as usize, bit_width, offset);
            }
            blocks.push(Block {
                reference,
                bit_width,
                bits,
                n: chunk.len(),
            });
        }
        ForEncoded {
            block_size,
            blocks,
            len: values.len(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Compressed size: per block, reference (8) + width (1) + packed bits.
    pub fn compressed_bytes(&self) -> usize {
        self.blocks.iter().map(|b| 9 + b.bits.len()).sum()
    }

    pub fn original_bytes(&self) -> usize {
        self.len * 8
    }

    /// O(1) random access: one block header plus one bit-packed slot.
    pub fn get(&self, i: usize) -> Result<i64> {
        if i >= self.len {
            return Err(FabricError::Codec(format!("index {i} out of range")));
        }
        let b = &self.blocks[i / self.block_size];
        let within = i % self.block_size;
        let offset = read_bits(&b.bits, within * b.bit_width as usize, b.bit_width);
        Ok((b.reference as i128 + offset as i128) as i64)
    }

    /// Decode one block.
    pub fn decode_block(&self, b: usize) -> Result<Vec<i64>> {
        let block = self
            .blocks
            .get(b)
            .ok_or_else(|| FabricError::Codec(format!("block {b} out of range")))?;
        let mut out = Vec::with_capacity(block.n);
        for i in 0..block.n {
            let offset = read_bits(&block.bits, i * block.bit_width as usize, block.bit_width);
            out.push((block.reference as i128 + offset as i128) as i64);
        }
        Ok(out)
    }

    pub fn decode_all(&self) -> Result<Vec<i64>> {
        let mut out = Vec::with_capacity(self.len);
        for b in 0..self.blocks.len() {
            out.extend(self.decode_block(b)?);
        }
        Ok(out)
    }
}

/// Write `width` low bits of `value` at bit offset `pos`.
fn write_bits(buf: &mut [u8], pos: usize, width: u8, value: u64) {
    for k in 0..width as usize {
        if (value >> k) & 1 == 1 {
            buf[(pos + k) / 8] |= 1 << ((pos + k) % 8);
        }
    }
}

/// Read `width` bits at bit offset `pos`.
fn read_bits(buf: &[u8], pos: usize, width: u8) -> u64 {
    let mut v = 0u64;
    for k in 0..width as usize {
        if (buf[(pos + k) / 8] >> ((pos + k) % 8)) & 1 == 1 {
            v |= 1 << k;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn narrow_range_packs_tightly() {
        // Values in [1000, 1015]: 4 bits each.
        let vals: Vec<i64> = (0..1024).map(|i| 1000 + (i % 16)).collect();
        let enc = ForEncoded::encode(&vals);
        // 8 blocks x (9 header + 128*4/8 = 64) = 584 bytes vs 8192 raw.
        assert!(enc.compressed_bytes() < 700, "{}", enc.compressed_bytes());
        assert_eq!(enc.decode_all().unwrap(), vals);
    }

    #[test]
    fn constant_block_is_zero_bits() {
        let vals = vec![42i64; 256];
        let enc = ForEncoded::encode(&vals);
        assert_eq!(enc.compressed_bytes(), 2 * 9); // headers only
        assert_eq!(enc.get(200).unwrap(), 42);
    }

    #[test]
    fn random_access_matches() {
        let vals: Vec<i64> = vec![5, -3, 1000, 7, 7, -90, 0];
        let enc = ForEncoded::encode_with_block(&vals, 3);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(enc.get(i).unwrap(), v, "index {i}");
        }
        assert!(enc.get(7).is_err());
        assert!(enc.decode_block(3).is_err());
    }

    #[test]
    fn negative_and_extreme_values() {
        let vals = vec![i64::MIN, i64::MAX, 0, -1];
        let enc = ForEncoded::encode_with_block(&vals, 2);
        assert_eq!(enc.decode_all().unwrap(), vals);
    }

    #[test]
    fn empty() {
        let enc = ForEncoded::encode(&[]);
        assert!(enc.is_empty());
        assert_eq!(enc.decode_all().unwrap(), Vec::<i64>::new());
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn prop_roundtrip(vals in proptest::collection::vec(any::<i64>(), 0..300),
                          block in 1usize..64) {
            let enc = ForEncoded::encode_with_block(&vals, block);
            prop_assert_eq!(enc.decode_all().unwrap(), vals.clone());
            for (i, &v) in vals.iter().enumerate() {
                prop_assert_eq!(enc.get(i).unwrap(), v);
            }
        }

        #[test]
        fn prop_never_larger_than_raw_plus_headers(
            vals in proptest::collection::vec(any::<i64>(), 1..300)
        ) {
            let enc = ForEncoded::encode(&vals);
            let headers = vals.len().div_ceil(DEFAULT_BLOCK) * 9;
            prop_assert!(enc.compressed_bytes() <= vals.len() * 8 + headers);
        }
    }
}
