//! Dictionary encoding with fixed-width codes.
//!
//! The friendliest codec for the fabric: a value is one array lookup away
//! (`dict[codes[i]]`), so the device can decode any row's column without
//! touching neighbours — true O(1) random access.

use fabric_types::{FabricError, Result};
use std::collections::BTreeMap;

/// A dictionary-encoded column of fixed-width raw values.
#[derive(Debug, Clone)]
pub struct DictEncoded {
    /// Distinct values in first-seen order, each `value_width` bytes.
    dict: Vec<u8>,
    value_width: usize,
    /// Per-row dictionary codes, packed to `code_width` bytes little-endian.
    codes: Vec<u8>,
    code_width: usize,
    len: usize,
}

/// Smallest byte width that can hold codes `0..n`.
fn code_width_for(n: usize) -> usize {
    match n {
        0..=0xFF => 1,
        0x100..=0xFFFF => 2,
        0x1_0000..=0xFFFF_FFFF => 4,
        _ => 8,
    }
}

impl DictEncoded {
    /// Encode `len` fixed-width values stored contiguously in `raw`.
    pub fn encode(raw: &[u8], value_width: usize) -> Result<Self> {
        if value_width == 0 || !raw.len().is_multiple_of(value_width) {
            return Err(FabricError::Codec(format!(
                "raw length {} is not a multiple of value width {value_width}",
                raw.len()
            )));
        }
        let len = raw.len() / value_width;
        let mut index: BTreeMap<&[u8], usize> = BTreeMap::new();
        let mut dict = Vec::new();
        let mut code_list = Vec::with_capacity(len);
        for i in 0..len {
            let v = &raw[i * value_width..(i + 1) * value_width];
            let next = index.len();
            let code = *index.entry(v).or_insert(next);
            if code == next {
                dict.extend_from_slice(v);
            }
            code_list.push(code);
        }
        let code_width = code_width_for(index.len().saturating_sub(1));
        let mut codes = Vec::with_capacity(len * code_width);
        for c in code_list {
            codes.extend_from_slice(&c.to_le_bytes()[..code_width]);
        }
        Ok(DictEncoded {
            dict,
            value_width,
            codes,
            code_width,
            len,
        })
    }

    /// Number of encoded values.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct values.
    pub fn cardinality(&self) -> usize {
        self.dict.len() / self.value_width
    }

    /// Compressed size in bytes (dictionary + codes).
    pub fn compressed_bytes(&self) -> usize {
        self.dict.len() + self.codes.len()
    }

    /// Original size in bytes.
    pub fn original_bytes(&self) -> usize {
        self.len * self.value_width
    }

    /// O(1) random access: the raw bytes of value `i`.
    pub fn get(&self, i: usize) -> &[u8] {
        let mut code = [0u8; 8];
        code[..self.code_width]
            .copy_from_slice(&self.codes[i * self.code_width..(i + 1) * self.code_width]);
        let c = u64::from_le_bytes(code) as usize;
        &self.dict[c * self.value_width..(c + 1) * self.value_width]
    }

    /// Decode everything back to raw bytes.
    pub fn decode_all(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.original_bytes());
        for i in 0..self.len {
            out.extend_from_slice(self.get(i));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    fn raw_from_i32(values: &[i32]) -> Vec<u8> {
        values.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn roundtrip_and_random_access() {
        let vals = vec![5i32, 7, 5, 5, 9, 7, 5];
        let raw = raw_from_i32(&vals);
        let enc = DictEncoded::encode(&raw, 4).unwrap();
        assert_eq!(enc.len(), 7);
        assert_eq!(enc.cardinality(), 3);
        assert_eq!(enc.decode_all(), raw);
        assert_eq!(enc.get(4), &9i32.to_le_bytes());
    }

    #[test]
    fn low_cardinality_compresses_well() {
        // 10_000 values from a domain of 3: ~1 byte per value plus dict.
        let vals: Vec<i32> = (0..10_000).map(|i| (i % 3) * 100).collect();
        let raw = raw_from_i32(&vals);
        let enc = DictEncoded::encode(&raw, 4).unwrap();
        assert!(enc.compressed_bytes() < raw.len() / 3);
        assert_eq!(enc.decode_all(), raw);
    }

    #[test]
    fn wide_cardinality_uses_wider_codes() {
        let vals: Vec<i32> = (0..300).collect();
        let enc = DictEncoded::encode(&raw_from_i32(&vals), 4).unwrap();
        assert_eq!(enc.cardinality(), 300);
        // 300 distinct -> 2-byte codes.
        assert_eq!(enc.compressed_bytes(), 300 * 4 + 300 * 2);
    }

    #[test]
    fn misaligned_input_is_error() {
        assert!(DictEncoded::encode(&[1, 2, 3], 4).is_err());
        assert!(DictEncoded::encode(&[1, 2, 3, 4], 0).is_err());
    }

    #[test]
    fn empty_input() {
        let enc = DictEncoded::encode(&[], 4).unwrap();
        assert!(enc.is_empty());
        assert_eq!(enc.decode_all(), Vec::<u8>::new());
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn prop_roundtrip(vals in proptest::collection::vec(-50i32..50, 0..500)) {
            let raw = raw_from_i32(&vals);
            let enc = DictEncoded::encode(&raw, 4).unwrap();
            prop_assert_eq!(enc.decode_all(), raw);
            for (i, v) in vals.iter().enumerate() {
                prop_assert_eq!(enc.get(i), &v.to_le_bytes());
            }
        }
    }
}
