//! The fabric-compatibility analysis of paper §III-D, as runnable code:
//! compare every codec's compression ratio and random-access granularity on
//! a column and report which ones a Relational Fabric can decompress on the
//! fly.

use crate::delta::BlockDelta;
use crate::dictionary::DictEncoded;
use crate::frame::ForEncoded;
use crate::huffman::HuffmanEncoded;
use crate::lz::Lz77;
use crate::rle::RleEncoded;
use fabric_types::Result;

/// How a codec supports reading value `i` without decoding everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RandomAccess {
    /// O(1) direct lookup (dictionary).
    Direct,
    /// Decode a bounded block of `n` values.
    Block(usize),
    /// Requires a data-dependent search over the encoding (RLE run index).
    Search,
    /// Full decompression only (LZ family).
    None,
}

impl RandomAccess {
    /// Can a fabric device decode this on the fly while carving column
    /// groups (paper §III-D)?
    pub fn fabric_compatible(&self) -> bool {
        matches!(self, RandomAccess::Direct | RandomAccess::Block(_))
    }
}

/// One codec's result on a column.
#[derive(Debug, Clone)]
pub struct CodecReport {
    pub name: &'static str,
    pub compressed_bytes: usize,
    pub original_bytes: usize,
    pub access: RandomAccess,
}

impl CodecReport {
    /// Compression ratio (original / compressed; > 1 means it compressed).
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            return 1.0;
        }
        self.original_bytes as f64 / self.compressed_bytes as f64
    }

    pub fn fabric_compatible(&self) -> bool {
        self.access.fabric_compatible()
    }
}

/// Run every codec over an `i64` column and report.
pub fn analyze_i64(values: &[i64]) -> Result<Vec<CodecReport>> {
    let raw: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
    let original = raw.len();

    let dict = DictEncoded::encode(&raw, 8)?;
    let frame = ForEncoded::encode(values);
    let delta = BlockDelta::encode(values);
    let huff = HuffmanEncoded::encode(&raw);
    let rle = RleEncoded::encode(values);
    let lz = Lz77::encode(&raw);

    Ok(vec![
        CodecReport {
            name: "dictionary",
            compressed_bytes: dict.compressed_bytes(),
            original_bytes: original,
            access: RandomAccess::Direct,
        },
        CodecReport {
            name: "frame-of-reference",
            compressed_bytes: frame.compressed_bytes(),
            original_bytes: original,
            access: RandomAccess::Direct,
        },
        CodecReport {
            name: "delta",
            compressed_bytes: delta.compressed_bytes(),
            original_bytes: original,
            access: RandomAccess::Block(delta.block_size()),
        },
        CodecReport {
            name: "huffman",
            compressed_bytes: huff.compressed_bytes(),
            original_bytes: original,
            access: RandomAccess::Block(crate::huffman::DEFAULT_BLOCK),
        },
        CodecReport {
            name: "rle",
            compressed_bytes: rle.compressed_bytes(),
            original_bytes: original,
            access: RandomAccess::Search,
        },
        CodecReport {
            name: "lz77",
            compressed_bytes: lz.compressed_bytes(),
            original_bytes: original,
            access: RandomAccess::None,
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compatibility_matches_paper_section_iii_d() {
        let vals: Vec<i64> = (0..1000).map(|i| i % 10).collect();
        let reports = analyze_i64(&vals).unwrap();
        let compat: Vec<(&str, bool)> = reports
            .iter()
            .map(|r| (r.name, r.fabric_compatible()))
            .collect();
        assert_eq!(
            compat,
            vec![
                ("dictionary", true),
                ("frame-of-reference", true),
                ("delta", true),
                ("huffman", true),
                ("rle", false),
                ("lz77", false),
            ]
        );
    }

    #[test]
    fn ratios_reflect_data_shape() {
        // Sorted, dense: delta should be the clear winner.
        let sorted: Vec<i64> = (0..5000).collect();
        let reports = analyze_i64(&sorted).unwrap();
        let get = |n: &str| reports.iter().find(|r| r.name == n).unwrap().ratio();
        assert!(get("delta") > 4.0, "delta ratio {}", get("delta"));

        // Low cardinality: dictionary and RLE shine.
        let lowcard: Vec<i64> = (0..5000).map(|i| (i / 1000) * 12345).collect();
        let reports = analyze_i64(&lowcard).unwrap();
        let get = |n: &str| reports.iter().find(|r| r.name == n).unwrap().ratio();
        assert!(get("dictionary") > 5.0);
        assert!(get("rle") > 100.0);
    }

    #[test]
    fn access_kinds() {
        assert!(RandomAccess::Direct.fabric_compatible());
        assert!(RandomAccess::Block(128).fabric_compatible());
        assert!(!RandomAccess::Search.fabric_compatible());
        assert!(!RandomAccess::None.fabric_compatible());
    }
}
