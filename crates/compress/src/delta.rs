//! Block-based delta encoding with zig-zag varints.
//!
//! Values are split into blocks; each block stores its first value verbatim
//! plus zig-zag varint deltas. Decoding value `i` touches only its block —
//! the granularity at which a fabric device can decompress on the fly.

use fabric_types::{cast, FabricError, Result};

/// Default rows per block (one block ≈ one device burst).
pub const DEFAULT_BLOCK: usize = 128;

/// Delta-encoded `i64` column.
#[derive(Debug, Clone)]
pub struct BlockDelta {
    block_size: usize,
    /// First value of each block.
    bases: Vec<i64>,
    /// Byte offset of each block's delta stream in `deltas`.
    offsets: Vec<usize>,
    deltas: Vec<u8>,
    len: usize,
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = cast::low_u8(v & 0x7F);
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(data: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *data
            .get(*pos)
            .ok_or_else(|| FabricError::Codec("varint stream truncated".into()))?;
        *pos += 1;
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(FabricError::Codec("varint too long".into()));
        }
    }
}

impl BlockDelta {
    /// Encode with the default block size.
    pub fn encode(values: &[i64]) -> Self {
        Self::encode_with_block(values, DEFAULT_BLOCK)
    }

    /// Encode with an explicit block size (must be ≥ 1).
    pub fn encode_with_block(values: &[i64], block_size: usize) -> Self {
        assert!(block_size >= 1);
        let mut bases = Vec::new();
        let mut offsets = Vec::new();
        let mut deltas = Vec::new();
        for block in values.chunks(block_size) {
            bases.push(block[0]);
            offsets.push(deltas.len());
            let mut prev = block[0];
            for &v in &block[1..] {
                write_varint(&mut deltas, zigzag(v.wrapping_sub(prev)));
                prev = v;
            }
        }
        BlockDelta {
            block_size,
            bases,
            offsets,
            deltas,
            len: values.len(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Compressed size in bytes (bases + offsets + delta stream).
    pub fn compressed_bytes(&self) -> usize {
        self.bases.len() * 8 + self.offsets.len() * 8 + self.deltas.len()
    }

    pub fn original_bytes(&self) -> usize {
        self.len * 8
    }

    /// Decode one whole block (the fabric's on-the-fly unit). Returns the
    /// values of block `b`.
    pub fn decode_block(&self, b: usize) -> Result<Vec<i64>> {
        if b >= self.bases.len() {
            return Err(FabricError::Codec(format!("block {b} out of range")));
        }
        let n = if (b + 1) * self.block_size <= self.len {
            self.block_size
        } else {
            self.len - b * self.block_size
        };
        let mut out = Vec::with_capacity(n);
        let mut v = self.bases[b];
        out.push(v);
        let mut pos = self.offsets[b];
        for _ in 1..n {
            v = v.wrapping_add(unzigzag(read_varint(&self.deltas, &mut pos)?));
            out.push(v);
        }
        Ok(out)
    }

    /// Random access to value `i` (decodes `i`'s block prefix).
    pub fn get(&self, i: usize) -> Result<i64> {
        if i >= self.len {
            return Err(FabricError::Codec(format!("index {i} out of range")));
        }
        let b = i / self.block_size;
        let within = i % self.block_size;
        let mut v = self.bases[b];
        let mut pos = self.offsets[b];
        for _ in 0..within {
            v = v.wrapping_add(unzigzag(read_varint(&self.deltas, &mut pos)?));
        }
        Ok(v)
    }

    /// Decode everything.
    pub fn decode_all(&self) -> Result<Vec<i64>> {
        let mut out = Vec::with_capacity(self.len);
        for b in 0..self.bases.len() {
            out.extend(self.decode_block(b)?);
        }
        Ok(out)
    }

    /// The block size used at encode time.
    pub fn block_size(&self) -> usize {
        self.block_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn zigzag_roundtrip_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 42, -42] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn sorted_data_compresses_well() {
        // Sorted timestamps with small gaps: ~1 byte per value.
        let vals: Vec<i64> = (0..10_000).map(|i| 1_600_000_000 + i * 3).collect();
        let enc = BlockDelta::encode(&vals);
        assert!(enc.compressed_bytes() < enc.original_bytes() / 4);
        assert_eq!(enc.decode_all().unwrap(), vals);
    }

    #[test]
    fn random_access_matches_decode_all() {
        let vals: Vec<i64> = vec![100, 90, 95, 1000, -5, -5, 7];
        let enc = BlockDelta::encode_with_block(&vals, 3);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(enc.get(i).unwrap(), v);
        }
        assert!(enc.get(7).is_err());
    }

    #[test]
    fn block_decode_boundaries() {
        let vals: Vec<i64> = (0..10).collect();
        let enc = BlockDelta::encode_with_block(&vals, 4);
        assert_eq!(enc.decode_block(0).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(enc.decode_block(2).unwrap(), vec![8, 9]); // partial tail
        assert!(enc.decode_block(3).is_err());
    }

    #[test]
    fn empty_and_single() {
        let enc = BlockDelta::encode(&[]);
        assert!(enc.is_empty());
        assert_eq!(enc.decode_all().unwrap(), Vec::<i64>::new());
        let enc = BlockDelta::encode(&[42]);
        assert_eq!(enc.get(0).unwrap(), 42);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn prop_roundtrip(vals in proptest::collection::vec(any::<i64>(), 0..300),
                          block in 1usize..64) {
            let enc = BlockDelta::encode_with_block(&vals, block);
            prop_assert_eq!(enc.decode_all().unwrap(), vals.clone());
            for (i, &v) in vals.iter().enumerate() {
                prop_assert_eq!(enc.get(i).unwrap(), v);
            }
        }
    }
}
