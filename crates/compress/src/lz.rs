//! A small LZ77 variant — the general-purpose family the paper rules out
//! for fabric use (§III-D): back-references reach arbitrarily far back, so
//! *"they require fully decompressing your data before you can access
//! separate columns"*.

use fabric_types::{cast, FabricError, Result};
use std::collections::BTreeMap;

/// Minimum/maximum match lengths.
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 255;
/// Search window.
const WINDOW: usize = 4096;

/// LZ77-compressed byte stream.
///
/// Token stream format: `0x00 <literal u8>` or `0x01 <offset u16 le>
/// <len u8>` (offset counts back from the current position; length is the
/// actual match length, always ≥ `MIN_MATCH`).
#[derive(Debug, Clone)]
pub struct Lz77 {
    tokens: Vec<u8>,
    len: usize,
}

impl Lz77 {
    pub fn encode(data: &[u8]) -> Self {
        let mut tokens = Vec::new();
        // Map from a 4-byte prefix to recent positions.
        let mut table: BTreeMap<[u8; 4], Vec<usize>> = BTreeMap::new();
        let mut i = 0usize;
        while i < data.len() {
            let mut best_len = 0usize;
            let mut best_off = 0usize;
            if i + MIN_MATCH <= data.len() {
                let key: [u8; 4] = data[i..i + 4].try_into().unwrap();
                if let Some(positions) = table.get(&key) {
                    for &p in positions.iter().rev().take(16) {
                        if i - p > WINDOW {
                            break;
                        }
                        let mut l = 0;
                        while i + l < data.len() && data[p + l] == data[i + l] && l < MAX_MATCH {
                            l += 1;
                        }
                        if l > best_len {
                            best_len = l;
                            best_off = i - p;
                        }
                    }
                }
            }
            if best_len >= MIN_MATCH {
                tokens.push(1);
                // Bounded by construction: `best_off <= WINDOW` (4096) and
                // `best_len <= MAX_MATCH` (255).
                tokens.extend_from_slice(&cast::low_u16(best_off as u64).to_le_bytes());
                tokens.push(cast::low_u8(best_len as u64));
                for j in i..i + best_len {
                    if j + 4 <= data.len() {
                        let key: [u8; 4] = data[j..j + 4].try_into().unwrap();
                        table.entry(key).or_default().push(j);
                    }
                }
                i += best_len;
            } else {
                tokens.push(0);
                tokens.push(data[i]);
                if i + 4 <= data.len() {
                    let key: [u8; 4] = data[i..i + 4].try_into().unwrap();
                    table.entry(key).or_default().push(i);
                }
                i += 1;
            }
        }
        Lz77 {
            tokens,
            len: data.len(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn compressed_bytes(&self) -> usize {
        self.tokens.len()
    }

    pub fn original_bytes(&self) -> usize {
        self.len
    }

    /// Full decompression — the only way to read anything from an LZ
    /// stream, which is exactly the fabric-compatibility problem.
    pub fn decode_all(&self) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(self.len);
        let mut i = 0usize;
        while i < self.tokens.len() {
            match self.tokens[i] {
                0 => {
                    let b = *self
                        .tokens
                        .get(i + 1)
                        .ok_or_else(|| FabricError::Codec("LZ literal truncated".into()))?;
                    out.push(b);
                    i += 2;
                }
                1 => {
                    if i + 4 > self.tokens.len() {
                        return Err(FabricError::Codec("LZ match truncated".into()));
                    }
                    let off = u16::from_le_bytes([self.tokens[i + 1], self.tokens[i + 2]]) as usize;
                    let l = self.tokens[i + 3] as usize;
                    if off == 0 || off > out.len() {
                        return Err(FabricError::Codec("LZ offset out of range".into()));
                    }
                    let start = out.len() - off;
                    for j in 0..l {
                        let b = out[start + j];
                        out.push(b);
                    }
                    i += 4;
                }
                t => return Err(FabricError::Codec(format!("bad LZ token {t}"))),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn roundtrip_repetitive() {
        let phrase = b"the cat sat on the mat; ";
        let mut data = Vec::new();
        for _ in 0..20 {
            data.extend_from_slice(phrase);
        }
        let enc = Lz77::encode(&data);
        assert_eq!(enc.decode_all().unwrap(), data);
        assert!(enc.compressed_bytes() < data.len() / 2);
    }

    #[test]
    fn roundtrip_overlapping_match() {
        // Classic overlap: "aaaa..." encodes as a self-referencing match.
        let data = vec![b'a'; 300];
        let enc = Lz77::encode(&data);
        assert_eq!(enc.decode_all().unwrap(), data);
        assert!(enc.compressed_bytes() < 32);
    }

    #[test]
    fn incompressible_data_roundtrips() {
        // A de Bruijn-ish pseudo-random sequence.
        let data: Vec<u8> = (0..512u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
            .collect();
        let enc = Lz77::encode(&data);
        assert_eq!(enc.decode_all().unwrap(), data);
    }

    #[test]
    fn empty() {
        let enc = Lz77::encode(&[]);
        assert!(enc.is_empty());
        assert_eq!(enc.decode_all().unwrap(), Vec::<u8>::new());
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_roundtrip(data in proptest::collection::vec(0u8..8, 0..2000)) {
            let enc = Lz77::encode(&data);
            prop_assert_eq!(enc.decode_all().unwrap(), data);
        }
    }
}
