//! Compression codecs and the fabric-compatibility analysis of paper
//! §III-D.
//!
//! The Relational Fabric stores base data row-oriented and carves column
//! groups out of it on the fly, so a compression scheme is *fabric
//! compatible* only if individual values (or small blocks) can be decoded
//! without touching the rest of the stream:
//!
//! > *"Delta, dictionary, and huffman encoding … are easily supported by
//! > Relational Fabric. … the compression schemes under the run-length
//! > encoding family cannot be used out of the box. … General compression
//! > algorithms of the LZ family … require fully decompressing your data."*
//!
//! * [`dictionary`] — fixed-width codes; O(1) random access;
//! * [`delta`] — block-based delta with zig-zag varints; random access at
//!   block granularity;
//! * [`frame`] — frame-of-reference with per-block bit packing; O(1)
//!   random access (one header + one bit-packed slot);
//! * [`huffman`] — canonical Huffman over bytes with a block index;
//!   random access at block granularity;
//! * [`rle`] — run-length encoding; random access requires a search over
//!   the run index (the paper's "expensive decoding step");
//! * [`lz`] — a small LZ77 variant; no random access at all;
//! * [`analyze`] — compares ratio and access granularity per codec and
//!   reports which are usable under a Relational Fabric.

pub mod analyze;
pub mod delta;
pub mod dictionary;
pub mod frame;
pub mod huffman;
pub mod lz;
pub mod rle;

pub use analyze::{analyze_i64, CodecReport, RandomAccess};
pub use delta::BlockDelta;
pub use dictionary::DictEncoded;
pub use frame::ForEncoded;
pub use huffman::HuffmanEncoded;
pub use lz::Lz77;
pub use rle::RleEncoded;
