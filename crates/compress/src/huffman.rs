//! Canonical Huffman coding over bytes, with a block index for
//! fabric-style random access at block granularity.

use fabric_types::{cast, FabricError, Result};
use std::collections::BinaryHeap;

/// Default symbols per indexed block.
pub const DEFAULT_BLOCK: usize = 1024;

/// Huffman-encoded byte stream.
#[derive(Debug, Clone)]
pub struct HuffmanEncoded {
    /// Code length per byte symbol (0 = unused).
    lengths: [u8; 256],
    /// The bitstream, MSB-first within each byte.
    bits: Vec<u8>,
    /// Symbols per indexed block.
    block_symbols: usize,
    /// Starting bit offset of each block.
    block_offsets: Vec<u64>,
    /// Total number of encoded symbols.
    len: usize,
}

/// Build canonical code lengths from frequencies (package-free heap
/// algorithm; max depth is fine for 256 symbols).
fn build_lengths(freq: &[u64; 256]) -> [u8; 256] {
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        id: usize, // tie-break for determinism
        symbols: Vec<usize>,
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Min-heap via reversed comparison.
            other.weight.cmp(&self.weight).then(other.id.cmp(&self.id))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut lengths = [0u8; 256];
    let mut heap = BinaryHeap::new();
    let mut id = 0;
    for (sym, &f) in freq.iter().enumerate() {
        if f > 0 {
            heap.push(Node {
                weight: f,
                id,
                symbols: vec![sym],
            });
            id += 1;
        }
    }
    match heap.len() {
        0 => return lengths,
        1 => {
            // Degenerate: one distinct symbol still needs one bit.
            lengths[heap.pop().unwrap().symbols[0]] = 1;
            return lengths;
        }
        _ => {}
    }
    while heap.len() > 1 {
        let a = heap.pop().unwrap();
        let b = heap.pop().unwrap();
        let mut symbols = a.symbols;
        symbols.extend(b.symbols);
        for &s in &symbols {
            lengths[s] += 1;
        }
        heap.push(Node {
            weight: a.weight + b.weight,
            id,
            symbols,
        });
        id += 1;
    }
    lengths
}

/// Canonical code assignment: symbols sorted by (length, symbol).
fn canonical_codes(lengths: &[u8; 256]) -> [(u32, u8); 256] {
    let mut order: Vec<usize> = (0..256).filter(|&s| lengths[s] > 0).collect();
    order.sort_by_key(|&s| (lengths[s], s));
    let mut codes = [(0u32, 0u8); 256];
    let mut code = 0u32;
    let mut prev_len = 0u8;
    for &s in &order {
        let l = lengths[s];
        code <<= l - prev_len;
        codes[s] = (code, l);
        code += 1;
        prev_len = l;
    }
    codes
}

struct BitWriter {
    bytes: Vec<u8>,
    bit_pos: u64,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter {
            bytes: Vec::new(),
            bit_pos: 0,
        }
    }

    fn write(&mut self, code: u32, len: u8) {
        for i in (0..len).rev() {
            let bit = (code >> i) & 1;
            let byte_i = (self.bit_pos / 8) as usize;
            if byte_i == self.bytes.len() {
                self.bytes.push(0);
            }
            if bit == 1 {
                self.bytes[byte_i] |= 1 << (7 - (self.bit_pos % 8));
            }
            self.bit_pos += 1;
        }
    }
}

#[inline]
fn read_bit(bits: &[u8], pos: u64) -> u8 {
    (bits[(pos / 8) as usize] >> (7 - (pos % 8))) & 1
}

impl HuffmanEncoded {
    /// Encode with the default block size.
    pub fn encode(data: &[u8]) -> Self {
        Self::encode_with_block(data, DEFAULT_BLOCK)
    }

    /// Encode `data`, indexing every `block_symbols` symbols.
    pub fn encode_with_block(data: &[u8], block_symbols: usize) -> Self {
        assert!(block_symbols >= 1);
        let mut freq = [0u64; 256];
        for &b in data {
            freq[b as usize] += 1;
        }
        let lengths = build_lengths(&freq);
        let codes = canonical_codes(&lengths);
        let mut w = BitWriter::new();
        let mut block_offsets = Vec::with_capacity(data.len() / block_symbols + 1);
        for (i, &b) in data.iter().enumerate() {
            if i % block_symbols == 0 {
                block_offsets.push(w.bit_pos);
            }
            let (code, len) = codes[b as usize];
            w.write(code, len);
        }
        HuffmanEncoded {
            lengths,
            bits: w.bytes,
            block_symbols,
            block_offsets,
            len: data.len(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Compressed size: bitstream + 256-byte length table + block index.
    pub fn compressed_bytes(&self) -> usize {
        self.bits.len() + 256 + self.block_offsets.len() * 8
    }

    pub fn original_bytes(&self) -> usize {
        self.len
    }

    fn decode_from(&self, mut pos: u64, n: usize) -> Result<Vec<u8>> {
        // Canonical decoding: walk lengths, tracking the first code of each
        // length.
        let codes = canonical_codes(&self.lengths);
        // Build (length -> (first_code, first_index)) plus symbol order.
        let mut order: Vec<usize> = (0..256).filter(|&s| self.lengths[s] > 0).collect();
        order.sort_by_key(|&s| (self.lengths[s], s));
        let max_len = order.iter().map(|&s| self.lengths[s]).max().unwrap_or(0);

        let mut out = Vec::with_capacity(n);
        let total_bits = self.bits.len() as u64 * 8;
        for _ in 0..n {
            let mut code = 0u32;
            let mut len = 0u8;
            loop {
                if pos >= total_bits {
                    return Err(FabricError::Codec("huffman stream truncated".into()));
                }
                code = (code << 1) | u32::from(read_bit(&self.bits, pos));
                pos += 1;
                len += 1;
                if len > max_len {
                    return Err(FabricError::Codec("invalid huffman code".into()));
                }
                // Linear probe of symbols with this length (fine for tests
                // and simulation workloads; a real decoder uses tables).
                if let Some(&sym) = order
                    .iter()
                    .find(|&&s| self.lengths[s] == len && codes[s] == (code, len))
                {
                    // `order` only holds indices 0..256.
                    out.push(cast::low_u8(sym as u64));
                    break;
                }
            }
        }
        Ok(out)
    }

    /// Decode one indexed block.
    pub fn decode_block(&self, b: usize) -> Result<Vec<u8>> {
        if b >= self.block_offsets.len() {
            return Err(FabricError::Codec(format!("block {b} out of range")));
        }
        let n = if (b + 1) * self.block_symbols <= self.len {
            self.block_symbols
        } else {
            self.len - b * self.block_symbols
        };
        self.decode_from(self.block_offsets[b], n)
    }

    /// Decode the whole stream.
    pub fn decode_all(&self) -> Result<Vec<u8>> {
        if self.len == 0 {
            return Ok(Vec::new());
        }
        self.decode_from(0, self.len)
    }

    /// Random access to byte `i` (decodes its block prefix).
    pub fn get(&self, i: usize) -> Result<u8> {
        if i >= self.len {
            return Err(FabricError::Codec(format!("index {i} out of range")));
        }
        let b = i / self.block_symbols;
        let within = i % self.block_symbols;
        let decoded = self.decode_from(self.block_offsets[b], within + 1)?;
        Ok(decoded[within])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn roundtrip_text() {
        let data = b"abracadabra abracadabra the quick brown fox".to_vec();
        let enc = HuffmanEncoded::encode(&data);
        assert_eq!(enc.decode_all().unwrap(), data);
    }

    #[test]
    fn skewed_data_compresses() {
        // 90% one symbol: well under 8 bits per symbol.
        let data: Vec<u8> = (0..10_000)
            .map(|i| if i % 10 == 0 { b'x' } else { b'a' })
            .collect();
        let enc = HuffmanEncoded::encode(&data);
        assert!(enc.bits.len() < data.len() / 4);
        assert_eq!(enc.decode_all().unwrap(), data);
    }

    #[test]
    fn single_symbol_degenerate() {
        let data = vec![7u8; 100];
        let enc = HuffmanEncoded::encode(&data);
        assert_eq!(enc.decode_all().unwrap(), data);
        assert_eq!(enc.get(50).unwrap(), 7);
    }

    #[test]
    fn block_random_access() {
        let data: Vec<u8> = (0..500).map(|i| (i % 7) as u8 * 30).collect();
        let enc = HuffmanEncoded::encode_with_block(&data, 64);
        for i in [0usize, 63, 64, 499] {
            assert_eq!(enc.get(i).unwrap(), data[i], "index {i}");
        }
        assert_eq!(enc.decode_block(1).unwrap(), &data[64..128]);
        assert!(enc.get(500).is_err());
    }

    #[test]
    fn empty_input() {
        let enc = HuffmanEncoded::encode(&[]);
        assert!(enc.is_empty());
        assert_eq!(enc.decode_all().unwrap(), Vec::<u8>::new());
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..400),
                          block in 1usize..128) {
            let enc = HuffmanEncoded::encode_with_block(&data, block);
            prop_assert_eq!(enc.decode_all().unwrap(), data);
        }
    }
}
