//! Run-length encoding — the family the paper flags as *not* usable out of
//! the box under a Relational Fabric (§III-D): locating row `i` requires a
//! search over the run index, and run boundaries don't align with the
//! row-group blocks a fabric device streams.

use fabric_types::{FabricError, Result};

/// RLE-encoded `i64` column.
#[derive(Debug, Clone)]
pub struct RleEncoded {
    /// `(value, run_length)` pairs.
    runs: Vec<(i64, u32)>,
    /// Cumulative row count *before* each run (for binary search).
    starts: Vec<u64>,
    len: usize,
}

impl RleEncoded {
    pub fn encode(values: &[i64]) -> Self {
        let mut runs: Vec<(i64, u32)> = Vec::new();
        for &v in values {
            match runs.last_mut() {
                Some((rv, rl)) if *rv == v && *rl < u32::MAX => *rl += 1,
                _ => runs.push((v, 1)),
            }
        }
        let mut starts = Vec::with_capacity(runs.len());
        let mut acc = 0u64;
        for &(_, rl) in &runs {
            starts.push(acc);
            acc += rl as u64;
        }
        RleEncoded {
            runs,
            starts,
            len: values.len(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    pub fn compressed_bytes(&self) -> usize {
        self.runs.len() * 12
    }

    pub fn original_bytes(&self) -> usize {
        self.len * 8
    }

    /// Random access via binary search over run starts — the "expensive
    /// decoding step" of §III-D.
    pub fn get(&self, i: usize) -> Result<i64> {
        if i >= self.len {
            return Err(FabricError::Codec(format!("index {i} out of range")));
        }
        let run = match self.starts.binary_search(&(i as u64)) {
            Ok(r) => r,
            Err(r) => r - 1,
        };
        Ok(self.runs[run].0)
    }

    pub fn decode_all(&self) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.len);
        for &(v, rl) in &self.runs {
            out.extend(std::iter::repeat_n(v, rl as usize));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn runs_collapse() {
        let vals = vec![5i64, 5, 5, 7, 7, 5];
        let enc = RleEncoded::encode(&vals);
        assert_eq!(enc.num_runs(), 3);
        assert_eq!(enc.decode_all(), vals);
    }

    #[test]
    fn random_access_across_run_boundaries() {
        let vals = vec![1i64, 1, 2, 2, 2, 3];
        let enc = RleEncoded::encode(&vals);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(enc.get(i).unwrap(), v);
        }
        assert!(enc.get(6).is_err());
    }

    #[test]
    fn sorted_low_cardinality_compresses_extremely() {
        let vals: Vec<i64> = (0..4).flat_map(|v| vec![v; 2500]).collect();
        let enc = RleEncoded::encode(&vals);
        assert_eq!(enc.num_runs(), 4);
        assert!(enc.compressed_bytes() < 100);
    }

    #[test]
    fn empty() {
        let enc = RleEncoded::encode(&[]);
        assert!(enc.is_empty());
        assert_eq!(enc.decode_all(), Vec::<i64>::new());
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn prop_roundtrip(vals in proptest::collection::vec(-3i64..3, 0..500)) {
            let enc = RleEncoded::encode(&vals);
            prop_assert_eq!(enc.decode_all(), vals.clone());
            for (i, &v) in vals.iter().enumerate() {
                prop_assert_eq!(enc.get(i).unwrap(), v);
            }
        }
    }
}
